"""Command-line interface.

Usage::

    repro-sptrsv experiments --list
    repro-sptrsv experiments table4 fig5 --n-matrices 36
    repro-sptrsv solve --domain circuit --n-rows 2000 --solver Capellini
    repro-sptrsv analyze --matrix path/to/file.mtx
    repro-sptrsv analyze --solver naive-thread --domain circuit --json
    repro-sptrsv analyze --solver syncfree --domain circuit --n-rows 200 --trace
    repro-sptrsv analyze --levels --domain circuit --n-rows 16000
    repro-sptrsv analyze --lint
    repro-sptrsv analyze --serve-lint
    repro-sptrsv check-interleavings --scenario all --schedules 50
    repro-sptrsv check-interleavings --scenario timeout --mode systematic
    repro-sptrsv replay events.jsonl --speed 10
    repro-sptrsv replay events.jsonl --wall --speed 30
    repro-sptrsv profile --solver writing_first --domain circuit --n-rows 600
    repro-sptrsv profile --solver two_phase --chrome-trace trace.json
    repro-sptrsv generate --domain lp --n-rows 5000 --out lp.mtx
    repro-sptrsv serve-stats --domain circuit --n-rows 800 --requests 16
    repro-sptrsv serve-stats --execution host --requests 32
    repro-sptrsv serve-stats --profile --trace-log events.jsonl
    repro-sptrsv serve-stats --openmetrics
    repro-sptrsv serve-stats --spans --workers 2 --requests 8
    repro-sptrsv serve-cluster --workers 2 --matrices 3 --requests 8
    repro-sptrsv serve-cluster --workers 2 --chaos-kill --openmetrics
    repro-sptrsv serve-cluster --chrome-trace fleet.json --trace-log fleet.jsonl
    repro-sptrsv serve-top --demo --iterations 3
    repro-sptrsv serve-top --url http://127.0.0.1:9100/metrics
    repro-sptrsv replay events.jsonl --workers 2
    repro-sptrsv serve-stats --journal-dir /tmp/journal --requests 32
    repro-sptrsv serve-cluster --workers 2 --journal-dir /tmp/journal
    repro-sptrsv journal tail /tmp/journal -n 5
    repro-sptrsv journal query /tmp/journal --lane compiled
    repro-sptrsv journal report /tmp/journal
    repro-sptrsv regress
    repro-sptrsv regress --quick --cycles-tol 0.01
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

import numpy as np

__all__ = ["main", "build_parser"]

#: experiment-id -> module name under repro.experiments
EXPERIMENT_IDS = (
    "table1",
    "table2",
    "fig2",
    "fig3",
    "table4",
    "fig4",
    "fig5",
    "table5",
    "fig6",
    "fig7",
    "fig8",
    "table6",
    "ablation",
    "amortization",
)

_SOLVERS: dict[str, Callable] = {}


def _solver_registry() -> dict[str, Callable]:
    if not _SOLVERS:
        from repro import solvers

        _SOLVERS.update(
            {
                "Serial": solvers.SerialReferenceSolver,
                "LevelSet": solvers.LevelSetSolver,
                "SyncFree": solvers.SyncFreeSolver,
                "cuSPARSE": solvers.CuSparseProxySolver,
                "Capellini": solvers.WritingFirstCapelliniSolver,
                "Capellini-TwoPhase": solvers.TwoPhaseCapelliniSolver,
                "Adaptive": solvers.AdaptiveCapelliniSolver,
                "auto": None,  # granularity-driven selection
            }
        )
    return _SOLVERS


#: schedule-policy key -> simulator-backed solver class name (for the
#: ``profile`` and ``analyze --trace`` commands, which accept the same
#: spellings as the static verifier: writing_first, two_phase, ...)
_POLICY_SOLVER_NAMES = {
    "naive-thread": "NaiveThreadSolver",
    "capellini": "WritingFirstCapelliniSolver",
    "capellini-two-phase": "TwoPhaseCapelliniSolver",
    "syncfree": "SyncFreeSolver",
    "syncfree-csc": "SyncFreeCSCSolver",
    "adaptive": "AdaptiveCapelliniSolver",
    "levelset": "LevelSetSolver",
}


def _resolve_sim_solver(name: str, L):
    """Solver instance for simulator-backed commands.

    Returns ``(solver, None)`` or ``(None, error_message)``.  ``auto``
    delegates to granularity selection; anything else goes through
    :func:`repro.analysis.schedule.resolve_policy`, so every alias the
    static verifier accepts works here too.
    """
    from repro import solvers

    if name == "auto":
        return solvers.select_solver(L), None
    from repro.analysis.schedule import resolve_policy

    try:
        key = resolve_policy(name).key
    except Exception as exc:  # unknown policy name
        return None, f"unknown solver {name!r}: {exc}"
    cls_name = _POLICY_SOLVER_NAMES.get(key)
    if cls_name is None:
        return None, (
            f"solver {name!r} (policy {key!r}) does not run on the "
            "simulator; choose one of: "
            + ", ".join(sorted(_POLICY_SOLVER_NAMES)) + ", auto"
        )
    return getattr(solvers, cls_name)(), None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sptrsv",
        description="CapelliniSpTRSV reproduction: solvers, analysis and "
        "paper experiments on a simulated GPU",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_exp = sub.add_parser("experiments", help="regenerate paper tables/figures")
    p_exp.add_argument("ids", nargs="*", help="experiment ids (default: all)")
    p_exp.add_argument("--list", action="store_true", help="list experiment ids")
    p_exp.add_argument("--n-matrices", type=int, default=None,
                       help="suite size for the sweep experiments")
    p_exp.add_argument("--scale", type=float, default=0.5,
                       help="stand-in matrix scale for cycle-sim experiments")
    p_exp.add_argument("--json", metavar="DIR", default=None,
                       help="also write each result as JSON into DIR")

    p_solve = sub.add_parser("solve", help="solve one generated system")
    p_solve.add_argument("--domain", default="circuit")
    p_solve.add_argument("--n-rows", type=int, default=2000)
    p_solve.add_argument("--seed", type=int, default=0)
    p_solve.add_argument("--solver", default="auto",
                         choices=sorted(_solver_registry()))
    p_solve.add_argument("--device", default="SimSmall",
                         choices=["SimSmall", "SimTiny"])

    p_an = sub.add_parser(
        "analyze",
        help="level/granularity analysis, static schedule verification "
        "and kernel lint",
    )
    group = p_an.add_mutually_exclusive_group(required=False)
    group.add_argument("--matrix", help="Matrix Market file to analyze")
    group.add_argument("--domain", default=None,
                       help="generate a matrix of this domain "
                       "(default: circuit)")
    p_an.add_argument("--n-rows", type=int, default=10000)
    p_an.add_argument("--seed", type=int, default=0)
    p_an.add_argument("--solver", default=None, metavar="NAME",
                      help="statically verify deadlock-freedom of NAME "
                      "(e.g. naive-thread, capellini, syncfree) on the "
                      "matrix; 'all' checks every solver family")
    p_an.add_argument("--levels", action="store_true",
                      help="level-structure view: schedule depth, "
                      "level-width histogram, Eq. 1 granularity against "
                      "the compiled-lane threshold, and a level-merge "
                      "preview (merged depth, redundant-work ratio)")
    p_an.add_argument("--lint", action="store_true",
                      help="run the kernel lint over repro.solvers "
                      "(no matrix needed)")
    p_an.add_argument("--serve-lint", action="store_true",
                      help="run the async-hazard lint (SL001-SL005) over "
                      "repro.serve (no matrix needed)")
    p_an.add_argument("--json", action="store_true",
                      help="emit the analysis as one JSON document on "
                      "stdout (machine-readable verdicts for CI and the "
                      "serve engine)")
    p_an.add_argument("--trace", action="store_true",
                      help="run --solver (default: auto) on the simulator "
                      "with the warp tracer attached and render the "
                      "ASCII timeline (use small --n-rows)")

    p_prof = sub.add_parser(
        "profile",
        help="cycle-level phase attribution of one simulated solve: "
        "flame summary, Chrome/Perfetto trace, JSON report",
    )
    p_prof.add_argument("--matrix", default=None,
                        help="Matrix Market file to solve")
    p_prof.add_argument("--domain", default=None,
                        help="generate a matrix of this domain "
                        "(default: circuit)")
    p_prof.add_argument("--n-rows", type=int, default=1000)
    p_prof.add_argument("--seed", type=int, default=0)
    p_prof.add_argument("--solver", default="auto",
                        help="solver/policy name (writing_first, "
                        "two_phase, syncfree, syncfree_csc, levelset, "
                        "adaptive, naive_thread or auto)")
    p_prof.add_argument("--device", default="SimSmall",
                        choices=["SimSmall", "SimTiny"])
    p_prof.add_argument("--chrome-trace", metavar="PATH", default=None,
                        help="write a Perfetto-loadable trace "
                        "(chrome://tracing / ui.perfetto.dev) to PATH")
    p_prof.add_argument("--json", action="store_true",
                        help="emit the full profile report as JSON")
    p_prof.add_argument("--top", type=int, default=8,
                        help="wait-heavy warps/levels to list")

    p_srv = sub.add_parser(
        "serve-stats",
        help="run a synthetic serving session through repro.serve and "
        "print the telemetry snapshot",
    )
    p_srv.add_argument("--domain", default="circuit")
    p_srv.add_argument("--n-rows", type=int, default=800)
    p_srv.add_argument("--seed", type=int, default=0)
    p_srv.add_argument("--requests", type=int, default=16,
                       help="concurrent single-RHS requests to fire")
    p_srv.add_argument("--rhs", type=int, default=4,
                       help="right-hand sides of the one multi-RHS request "
                       "(0 to skip)")
    p_srv.add_argument("--max-batch", type=int, default=32)
    p_srv.add_argument("--execution", default="auto",
                       choices=["auto", "compiled", "host", "sim"],
                       help="execution lane: 'compiled' runs the fused "
                       "level-merged plan (deep-matrix fast path), 'host' "
                       "the registry's vectorized per-level plan, 'sim' "
                       "the cycle-level simulator, 'auto' picks compiled "
                       "for deep-and-skinny matrices and host otherwise, "
                       "with a simulator fallback")
    p_srv.add_argument("--device", default="SimSmall",
                       choices=["SimSmall", "SimTiny"])
    p_srv.add_argument("--json", action="store_true",
                       help="print the raw snapshot as JSON")
    p_srv.add_argument("--openmetrics", action="store_true",
                       help="print the telemetry in OpenMetrics/"
                       "Prometheus text format instead of the snapshot")
    p_srv.add_argument("--profile", action="store_true",
                       help="attach the per-lane profiler: every launch "
                       "event in the trace log carries a phase digest "
                       "(wall-clock gather/reduce/scatter on the host "
                       "lane, cycle phases on the simulator lane)")
    p_srv.add_argument("--trace-log", metavar="PATH", default=None,
                       help="write the engine's structured event log "
                       "(enqueue/batch/launch/publish, JSONL) to PATH")
    p_srv.add_argument("--spans", action="store_true",
                       help="drive the session through a small sharded "
                       "cluster with distributed tracing on and print "
                       "per-hop latency attribution (p50/p99 per hop) "
                       "plus captured slow-request exemplars")
    p_srv.add_argument("--workers", type=int, default=2,
                       help="shard workers for --spans mode")
    p_srv.add_argument("--slow-ms", type=float, default=None,
                       help="explicit slow-request threshold for --spans "
                       "(default: adaptive p95 of root durations)")
    p_srv.add_argument("--journal-dir", metavar="DIR", default=None,
                       help="journal every solve (checksummed JSONL "
                       "segments) into DIR; inspect with "
                       "'repro-sptrsv journal'")

    p_cl = sub.add_parser(
        "serve-cluster",
        help="run a synthetic session through the multi-process sharded "
        "serve tier (ShardRouter + shard workers, zero-copy plans) and "
        "print the fleet snapshot",
    )
    p_cl.add_argument("--workers", type=int, default=2,
                      help="shard worker processes to spawn")
    p_cl.add_argument("--matrices", type=int, default=3,
                      help="distinct matrices to register (sharded by "
                      "content fingerprint)")
    p_cl.add_argument("--domain", default="circuit")
    p_cl.add_argument("--n-rows", type=int, default=400)
    p_cl.add_argument("--seed", type=int, default=0)
    p_cl.add_argument("--requests", type=int, default=8,
                      help="pipelined single-RHS solves per matrix")
    p_cl.add_argument("--rhs", type=int, default=4,
                      help="width of the one multi-RHS solve per matrix "
                      "(0 to skip)")
    p_cl.add_argument("--max-batch", type=int, default=32)
    p_cl.add_argument("--execution", default="host",
                      choices=["auto", "compiled", "host", "sim"],
                      help="worker engines' execution lane")
    p_cl.add_argument("--chaos-kill", action="store_true",
                      help="SIGKILL one worker mid-session and verify "
                      "the router respawns it and answers stay correct")
    p_cl.add_argument("--timeout", type=float, default=60.0,
                      help="per-request deadline (s)")
    p_cl.add_argument("--json", action="store_true",
                      help="print the fleet snapshot as JSON")
    p_cl.add_argument("--openmetrics", action="store_true",
                      help="print the fleet roll-up in OpenMetrics text "
                      "format instead of the snapshot")
    p_cl.add_argument("--trace-log", metavar="PATH", default=None,
                      help="write the merged fleet trace (router spans + "
                      "every worker's event log, tracelog/2 JSONL) to "
                      "PATH")
    p_cl.add_argument("--chrome-trace", metavar="PATH", default=None,
                      help="write the session's distributed spans as one "
                      "multi-process Chrome/Perfetto trace (one pid row "
                      "per worker, flow arrows router->worker) to PATH")
    p_cl.add_argument("--journal-dir", metavar="DIR", default=None,
                      help="every shard worker journals its solves into "
                      "per-shard segment files under DIR (the filesystem "
                      "is the merge point; read with 'repro-sptrsv "
                      "journal')")

    p_top = sub.add_parser(
        "serve-top",
        help="live terminal dashboard over a fleet OpenMetrics "
        "exposition ('top' for the sharded serve tier)",
    )
    p_top.add_argument("--url", default=None,
                       help="scrape this /metrics endpoint (e.g. an "
                       "OpenMetricsExporter in front of a router)")
    p_top.add_argument("--demo", action="store_true",
                       help="spawn a small in-process demo cluster and "
                       "dashboard it (no endpoint needed)")
    p_top.add_argument("--interval", type=float, default=1.0,
                       help="seconds between refreshes")
    p_top.add_argument("--iterations", type=int, default=0,
                       help="frames to render before exiting "
                       "(0 = until interrupted)")
    p_top.add_argument("--workers", type=int, default=2,
                       help="demo cluster worker processes")
    p_top.add_argument("--matrices", type=int, default=2,
                       help="demo cluster registered matrices")
    p_top.add_argument("--n-rows", type=int, default=250)
    p_top.add_argument("--requests", type=int, default=4,
                       help="demo solves fired per refresh")
    p_top.add_argument("--domain", default="circuit")
    p_top.add_argument("--seed", type=int, default=0)

    p_reg = sub.add_parser(
        "regress",
        help="perf-regression sentinel: re-run the deterministic "
        "trajectory suite and diff it against the committed "
        "BENCH_solvers.json (exit 1 on regressions)",
    )
    from repro.metrics.regression import add_arguments as _regress_args

    _regress_args(p_reg)

    p_il = sub.add_parser(
        "check-interleavings",
        help="run the serve-engine scenarios under the deterministic "
        "interleaving explorer (seeded, replayable schedules); exit 1 "
        "on any invariant violation or hang, printing the minimal "
        "reproducing schedule",
    )
    p_il.add_argument("--scenario", default="all",
                      help="scenario name or 'all' (see repro.serve."
                      "scenarios.SCENARIOS)")
    p_il.add_argument("--schedules", type=int, default=25,
                      help="schedules to explore per scenario")
    p_il.add_argument("--seed", type=int, default=0,
                      help="base seed (random mode explores seeds "
                      "seed..seed+schedules-1)")
    p_il.add_argument("--mode", default="random",
                      choices=["random", "systematic"],
                      help="'random': independent seeded schedules; "
                      "'systematic': bounded breadth-first enumeration "
                      "of decision prefixes")
    p_il.add_argument("--json", action="store_true",
                      help="emit one JSON document of all reports")

    p_rep = sub.add_parser(
        "replay",
        help="feed a recorded trace-log JSONL back through a solve "
        "engine and check the replayed telemetry against the recording",
    )
    p_rep.add_argument("trace", help="TraceLog JSONL file (e.g. from "
                       "serve-stats --trace-log)")
    p_rep.add_argument("--speed", type=float, default=1.0,
                       help="inter-arrival speed multiplier (wall mode)")
    p_rep.add_argument("--wall", action="store_true",
                       help="pace arrivals in real time (scaled by "
                       "--speed) instead of the default virtual clock")
    p_rep.add_argument("--n", type=int, default=32,
                       help="rows of the stand-in matrices")
    p_rep.add_argument("--batch-window", type=float, default=0.0,
                       help="replay engine's coalescing window (s)")
    p_rep.add_argument("--execution", default="host",
                       choices=["auto", "compiled", "host", "sim"])
    p_rep.add_argument("--workers", type=int, default=0,
                       help="replay through an N-worker sharded cluster "
                       "instead of one in-process engine (always "
                       "wall-paced; 0 = in-process)")
    p_rep.add_argument("--json", action="store_true",
                       help="emit the replay report as JSON")
    p_rep.add_argument("--journal-dir", metavar="DIR", default=None,
                       help="journal the replayed solves into DIR — a "
                       "recorded trace regenerates an efficacy report "
                       "without live traffic")

    p_j = sub.add_parser(
        "journal",
        help="inspect a solve journal: tail recent records, query by "
        "matrix/lane/kind, or build the lane-efficacy report",
    )
    jsub = p_j.add_subparsers(dest="verb", required=True)
    j_tail = jsub.add_parser("tail", help="print the newest records")
    j_tail.add_argument("dir", help="journal directory")
    j_tail.add_argument("-n", type=int, default=10,
                        help="records to print (newest last)")
    j_query = jsub.add_parser("query", help="filter solve records")
    j_query.add_argument("dir", help="journal directory")
    j_query.add_argument("--kind", default=None,
                         help="record kind (solve, incident, ...)")
    j_query.add_argument("--matrix", default=None,
                         help="matrix fingerprint (prefix match)")
    j_query.add_argument("--lane", default=None,
                         choices=["compiled", "host", "sim"])
    j_query.add_argument("--limit", type=int, default=0,
                         help="cap printed records (0 = all)")
    j_report = jsub.add_parser(
        "report",
        help="lane-efficacy analytics: per-granularity-class lane "
        "win-rates, latency percentiles, recommended-lane table, EWMA "
        "latency anomalies; exits 0 healthy / 1 anomalies / 2 "
        "unreadable journal",
    )
    j_report.add_argument("dir", help="journal directory")
    j_report.add_argument("--min-samples", type=int, default=None,
                          help="samples a lane needs per class before "
                          "it can be recommended")
    j_report.add_argument("--json", action="store_true",
                          help="emit the full report as JSON")
    j_report.add_argument("--out", metavar="PATH", default=None,
                          help="write the recommended-lane artifact "
                          "here (default: DIR/lane_recommendations."
                          "json)")

    p_gen = sub.add_parser("generate", help="write a synthetic matrix to .mtx")
    p_gen.add_argument("--domain", required=True)
    p_gen.add_argument("--n-rows", type=int, required=True)
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("--out", required=True)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "experiments":
        return _cmd_experiments(args)
    if args.command == "solve":
        return _cmd_solve(args)
    if args.command == "analyze":
        return _cmd_analyze(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "serve-stats":
        return _cmd_serve_stats(args)
    if args.command == "serve-cluster":
        return _cmd_serve_cluster(args)
    if args.command == "serve-top":
        return _cmd_serve_top(args)
    if args.command == "check-interleavings":
        return _cmd_check_interleavings(args)
    if args.command == "replay":
        return _cmd_replay(args)
    if args.command == "journal":
        return _cmd_journal(args)
    if args.command == "regress":
        from repro.metrics.regression import run as regress_run

        return regress_run(args)
    if args.command == "generate":
        return _cmd_generate(args)
    raise AssertionError("unreachable")  # pragma: no cover


def _cmd_experiments(args) -> int:
    import importlib

    if args.list:
        print("\n".join(EXPERIMENT_IDS))
        return 0
    ids = args.ids or list(EXPERIMENT_IDS)
    unknown = [i for i in ids if i not in EXPERIMENT_IDS]
    if unknown:
        print(f"unknown experiment id(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    for exp_id in ids:
        module = importlib.import_module(f"repro.experiments.{exp_id}")
        kwargs = {}
        import inspect

        params = inspect.signature(module.run).parameters
        if args.n_matrices is not None and "n_matrices" in params:
            kwargs["n_matrices"] = args.n_matrices
        if "scale" in params:
            kwargs["scale"] = args.scale
        result = module.run(**kwargs)
        print(result.text)
        print()
        if args.json:
            import json
            from pathlib import Path

            out_dir = Path(args.json)
            out_dir.mkdir(parents=True, exist_ok=True)
            path = out_dir / f"{result.experiment_id}.json"
            path.write_text(json.dumps(result.to_json_dict(), indent=2))
    return 0


def _cmd_solve(args) -> int:
    from repro.datasets import generate
    from repro.gpu.device import SIM_SMALL, SIM_TINY
    from repro.solvers import select_solver
    from repro.sparse import lower_triangular_system

    device = SIM_SMALL if args.device == "SimSmall" else SIM_TINY
    L = generate(args.domain, args.n_rows, args.seed)
    system = lower_triangular_system(L)
    solver_cls = _solver_registry()[args.solver]
    solver = select_solver(L) if solver_cls is None else solver_cls()
    result = solver.solve(system.L, system.b, device=device)
    err = float(np.max(np.abs(result.x - system.x_true)))
    print(f"solver    : {result.solver_name}")
    print(f"matrix    : {args.domain}, n={L.n_rows}, nnz={L.nnz}")
    print(f"exec (sim): {result.exec_ms:.4f} ms "
          f"({result.gflops(L):.3f} GFLOPS)")
    print(f"preprocess: {result.preprocess.modeled_ms:.4f} ms modeled — "
          f"{result.preprocess.description}")
    if result.stats:
        s = result.stats
        print(f"instr     : {s.total_instructions} "
              f"(stall {s.stall_fraction:.1%}, "
              f"lane util {s.lane_utilization:.1%})")
    print(f"max error : {err:.3e}")
    return 0 if err < 1e-8 else 1


def _features_json(f) -> dict:
    return {
        "n_rows": f.n_rows,
        "nnz": f.nnz,
        "avg_nnz_per_row": f.avg_nnz_per_row,
        "max_nnz_per_row": f.max_nnz_per_row,
        "n_levels": f.n_levels,
        "avg_rows_per_level": f.avg_rows_per_level,
        "max_level_width": f.max_level_width,
        "granularity": f.granularity,
        "critical_path_length": f.critical_path_length,
    }


def _report_json(r) -> dict:
    return {
        "solver": r.policy.solver_name,
        "policy": r.policy.key,
        "wait": r.policy.wait,
        "verdict": r.verdict,
        "certified": r.certified,
        "hazards": [
            {
                "kind": h.kind,
                "severity": h.severity,
                "message": h.message,
            }
            for h in r.hazards
        ],
        "notes": list(r.notes),
        "edges": {
            "total": r.edges.n_edges,
            "cross_warp": r.edges.cross_warp,
            "intra_warp_backward": r.edges.intra_warp_backward,
            "intra_warp_forward": r.edges.intra_warp_forward,
            "max_intra_warp_chain": r.edges.max_intra_warp_chain,
        },
        "n_levels": r.n_levels,
        "granularity": r.granularity,
    }


def _cmd_analyze(args) -> int:
    import json

    from repro.analysis import extract_features
    from repro.datasets import generate
    from repro.sparse import read_matrix_market, make_unit_lower_triangular

    rc = 0
    doc: dict = {}
    emit = (lambda *a, **k: None) if args.json else print
    if args.lint:
        from repro.analysis.lint import lint_paths, solver_package_paths

        findings = lint_paths(solver_package_paths())
        for finding in findings:
            emit(finding.format())
        emit(
            f"kernel lint: {len(findings)} finding(s)"
            if findings
            else "kernel lint: clean"
        )
        doc["lint"] = {
            "count": len(findings),
            "findings": [f.to_json_dict() for f in findings],
        }
        rc = 1 if findings else 0
    if args.serve_lint:
        from repro.analysis.asynclint import lint_paths, serve_package_paths

        findings = lint_paths(serve_package_paths())
        for finding in findings:
            emit(finding.format())
        emit(
            f"serve lint: {len(findings)} finding(s)"
            if findings
            else "serve lint: clean"
        )
        doc["serve_lint"] = {
            "count": len(findings),
            "findings": [f.to_json_dict() for f in findings],
        }
        rc = max(rc, 1 if findings else 0)
    if args.lint or args.serve_lint:
        if args.matrix is None and args.domain is None and args.solver is None:
            if args.json:
                print(json.dumps(doc, indent=2))
            return rc

    if args.matrix:
        L = make_unit_lower_triangular(read_matrix_market(args.matrix))
        name = args.matrix
    else:
        domain = args.domain or "circuit"
        L = generate(domain, args.n_rows, args.seed)
        name = domain
    f = extract_features(L)
    emit(f"{name}: {f.summary()}")
    doc["matrix"] = name
    doc["features"] = _features_json(f)

    if args.levels:
        doc["levels"] = _analyze_levels_view(L, f, emit)
        if args.solver is None and not args.trace:
            if args.json:
                print(json.dumps(doc, indent=2))
            return rc

    if args.trace:
        from repro.errors import DeadlockError, SolverError
        from repro.gpu.device import SIM_SMALL
        from repro.gpu.trace import Tracer, render_timeline
        from repro.solvers._sim import tracing
        from repro.sparse import lower_triangular_system

        solver, err_msg = _resolve_sim_solver(args.solver or "auto", L)
        if solver is None:
            print(err_msg, file=sys.stderr)
            return 2
        system = lower_triangular_system(L)
        tracer = Tracer()
        try:
            with tracing(tracer):
                solver.solve(system.L, system.b, device=SIM_SMALL)
        except (DeadlockError, SolverError) as exc:
            # still render: the frozen timeline is the diagnosis
            emit(f"traced solve failed: {exc}")
            rc = max(rc, 1)
        timeline = render_timeline(tracer)
        emit()
        emit(timeline)
        doc["trace"] = {
            "solver": solver.name,
            "events": len(tracer.events),
            "timeline": timeline,
        }
        if args.json:
            print(json.dumps(doc, indent=2))
        return rc

    if args.solver:
        from repro.analysis.schedule import (
            render_verdict_table,
            verify_all,
            verify_schedule,
        )

        if args.solver.lower() == "all":
            reports = verify_all(L)
        else:
            reports = [verify_schedule(L, args.solver)]
        emit()
        emit(render_verdict_table(reports, title=f"schedule verification — {name}"))
        doc["reports"] = [_report_json(r) for r in reports]
        if any(r.verdict != "SAFE" for r in reports):
            rc = max(rc, 1)
        if args.json:
            print(json.dumps(doc, indent=2))
        return rc

    from repro.solvers import select_solver

    recommended = select_solver(f).name
    emit(f"recommended solver: {recommended}")
    doc["recommended_solver"] = recommended
    if args.json:
        print(json.dumps(doc, indent=2))
    return rc


def _analyze_levels_view(L, f, emit) -> dict:
    """Render the ``analyze --levels`` view; returns the JSON fragment.

    Three panels: the level-width histogram (how skinny is the DAG?),
    the Eq. 1 granularity indicator against the compiled-lane
    threshold, and a preview of what :func:`~repro.analysis.levels.
    merge_levels` would do with default knobs — merged depth and the
    redundant-work ratio the merge would pay for fewer barriers.
    """
    from repro.analysis.granularity import HIGH_GRANULARITY_THRESHOLD
    from repro.analysis.levels import compute_levels, merge_levels
    from repro.solvers.compiled import DEEP_LEVEL_COUNT, prefers_compiled

    schedule = compute_levels(L)
    widths = schedule.level_sizes()
    merged = merge_levels(L, schedule)

    # power-of-two width buckets: [1], [2,3], [4,7], ... up to max width
    buckets = []
    lo = 1
    max_w = int(widths.max()) if len(widths) else 0
    while lo <= max_w:
        hi = lo * 2
        count = int(np.sum((widths >= lo) & (widths < hi)))
        buckets.append({"lo": lo, "hi": hi - 1, "levels": count})
        lo = hi

    deep = schedule.n_levels >= DEEP_LEVEL_COUNT
    fine = f.granularity <= HIGH_GRANULARITY_THRESHOLD
    lane = "compiled" if prefers_compiled(f) else "host"
    barrier_ratio = (
        schedule.n_levels / merged.n_levels if merged.n_levels else 1.0
    )
    redundant_pct = (
        100.0 * merged.redundant_nnz / merged.direct_nnz
        if merged.direct_nnz
        else 0.0
    )

    emit()
    emit(f"level structure: {schedule.n_levels} level(s), "
         f"{schedule.n_rows} rows, "
         f"max width {max_w}, beta(rows/level) "
         f"{schedule.avg_rows_per_level():.2f}")
    emit("width histogram (levels per power-of-two width bucket):")
    peak = max((b["levels"] for b in buckets), default=1)
    for b in buckets:
        label = (str(b["lo"]) if b["lo"] == b["hi"]
                 else f"{b['lo']}-{b['hi']}")
        bar = "#" * max(1, round(40 * b["levels"] / peak)) \
            if b["levels"] else ""
        emit(f"  {label:>11} {b['levels']:>7}  {bar}")
    emit(f"granularity    : delta={f.granularity:.3f} "
         f"({'<=' if fine else '>'} threshold "
         f"{HIGH_GRANULARITY_THRESHOLD}) -> "
         f"{'fine-grained' if fine else 'coarse-grained'}")
    emit(f"depth          : {schedule.n_levels} "
         f"({'>=' if deep else '<'} deep cutoff {DEEP_LEVEL_COUNT})")
    emit(f"auto lane      : {lane}")
    emit(f"merge preview  : {merged.n_levels} merged level(s) "
         f"({barrier_ratio:.1f}x fewer barriers), "
         f"redundant nnz {merged.redundant_nnz} "
         f"(+{redundant_pct:.1f}% over direct {merged.direct_nnz})")
    return {
        "n_levels": schedule.n_levels,
        "max_width": max_w,
        "avg_rows_per_level": schedule.avg_rows_per_level(),
        "width_histogram": buckets,
        "granularity": f.granularity,
        "granularity_threshold": HIGH_GRANULARITY_THRESHOLD,
        "deep_level_count": DEEP_LEVEL_COUNT,
        "auto_lane": lane,
        "merged": {
            "n_levels": merged.n_levels,
            "n_groups": len(merged.group_sizes()),
            "direct_nnz": merged.direct_nnz,
            "expanded_nnz": merged.expanded_nnz,
            "redundant_nnz": merged.redundant_nnz,
            "barrier_reduction": barrier_ratio,
        },
    }


def _cmd_profile(args) -> int:
    """Profile one simulated solve: where do the cycles go?

    Runs the chosen solver under :func:`repro.obs.profile_solve` (the
    profiled solve is bit-identical to an unprofiled one), verifies the
    answer against the manufactured solution, then renders the phase
    attribution — terminal flame summary by default, ``--json`` for the
    full machine-readable report, ``--chrome-trace`` for a
    Perfetto-loadable per-warp timeline.
    """
    import json

    from repro.analysis import extract_features
    from repro.datasets import generate
    from repro.errors import DeadlockError, SolverError
    from repro.gpu.device import SIM_SMALL, SIM_TINY
    from repro.obs import (
        profile_json,
        profile_solve,
        render_flame,
        write_chrome_trace,
    )
    from repro.sparse import (
        lower_triangular_system,
        make_unit_lower_triangular,
        read_matrix_market,
    )

    device = SIM_SMALL if args.device == "SimSmall" else SIM_TINY
    if args.matrix:
        L = make_unit_lower_triangular(read_matrix_market(args.matrix))
        name = args.matrix
    else:
        domain = args.domain or "circuit"
        L = generate(domain, args.n_rows, args.seed)
        name = domain
    system = lower_triangular_system(L)
    solver, err_msg = _resolve_sim_solver(args.solver, system.L)
    if solver is None:
        print(err_msg, file=sys.stderr)
        return 2
    try:
        result, prof = profile_solve(
            solver, system.L, system.b, device=device
        )
    except (DeadlockError, SolverError) as exc:
        print(f"profiled solve failed: {exc}", file=sys.stderr)
        return 1
    err = float(np.max(np.abs(result.x - system.x_true)))

    # level attribution holds only for single-launch kernels with a
    # static row->warp mapping (LevelSet re-numbers warps per launch)
    level_of_row = None
    rows_per_warp = None
    if len(prof.launches) == 1:
        gran = getattr(solver, "processing_granularity", "")
        if gran == "thread":
            rows_per_warp = device.warp_size
        elif gran == "warp":
            rows_per_warp = 1
        if rows_per_warp is not None:
            level_of_row = extract_features(system.L).schedule.level_of_row

    if args.chrome_trace:
        write_chrome_trace(prof, args.chrome_trace)
    if args.json:
        doc = profile_json(
            prof, level_of_row=level_of_row, rows_per_warp=rows_per_warp
        )
        doc["matrix"] = {"name": name, "n_rows": L.n_rows, "nnz": L.nnz}
        doc["max_error"] = err
        print(json.dumps(doc, indent=2))
    else:
        print(
            render_flame(
                prof,
                top=args.top,
                level_of_row=level_of_row,
                rows_per_warp=rows_per_warp,
            )
        )
        print()
        if result.stats is not None:
            print(f"stats     : {result.stats.cycles} cycles "
                  f"(incl. modeled overheads), "
                  f"{result.stats.total_instructions} instr")
        print(f"exec (sim): {result.exec_ms:.4f} ms")
        print(f"max error : {err:.3e}")
        if args.chrome_trace:
            print(f"chrome trace -> {args.chrome_trace} "
                  "(load in ui.perfetto.dev or chrome://tracing)")
    return 0 if err < 1e-8 else 1


def _cmd_serve_stats(args) -> int:
    """Drive a short serving session and print its telemetry snapshot.

    Registers one synthetic matrix with the serve layer, fires
    ``--requests`` concurrent single-RHS solves (they coalesce into
    batched SpTRSM launches) plus one ``--rhs``-wide multi-RHS solve,
    verifies every answer against the manufactured solution, and prints
    the engine snapshot — the same dict the programmatic
    ``SolveEngine.snapshot()`` API returns.
    """
    import asyncio
    import json

    from repro.datasets import generate
    from repro.gpu.device import SIM_SMALL, SIM_TINY
    from repro.serve import SolveEngine
    from repro.sparse import lower_triangular_system

    if args.spans:
        return _serve_stats_spans(args)
    device = SIM_SMALL if args.device == "SimSmall" else SIM_TINY
    L = generate(args.domain, args.n_rows, args.seed)
    system = lower_triangular_system(L)

    async def session() -> tuple[dict, float, str | None]:
        journal = None
        if args.journal_dir:
            from repro.obs.journal import JournalWriter

            journal = JournalWriter(args.journal_dir, shard="serve")
        engine = SolveEngine(
            device=device, max_batch=args.max_batch, profile=args.profile,
            execution=args.execution, journal=journal,
        )
        engine.register(system.L, name="cli-demo")
        responses = await asyncio.gather(
            *[engine.solve("cli-demo", system.b)
              for _ in range(max(args.requests, 0))]
        )
        err = max(
            (float(np.max(np.abs(r.x - system.x_true))) for r in responses),
            default=0.0,
        )
        if args.rhs > 0:
            B = np.column_stack(
                [(r + 1.0) * system.b for r in range(args.rhs)]
            )
            multi = await engine.solve_multi("cli-demo", B)
            X_true = np.column_stack(
                [(r + 1.0) * system.x_true for r in range(args.rhs)]
            )
            err = max(err, float(np.max(np.abs(multi.x - X_true))))
        snap = engine.snapshot()
        om = None
        if args.openmetrics:
            from repro.metrics.expo import render_openmetrics

            om = render_openmetrics(
                engine.telemetry, cache=engine.registry.stats(),
                journal=journal.stats() if journal is not None else None,
            )
        if args.trace_log:
            engine.trace_log.write_jsonl(args.trace_log)
        await engine.close()
        if journal is not None:
            journal.close()
        return snap, err, om

    snap, err, om = asyncio.run(session())
    if args.openmetrics:
        sys.stdout.write(om)
    elif args.json:
        print(json.dumps({
            "matrix": {"domain": args.domain, "n_rows": L.n_rows,
                       "nnz": L.nnz},
            "snapshot": snap,
            "max_error": err,
        }, indent=2))
    else:
        req, width = snap["requests"], snap["batches"]["width"]
        lat, cache = snap["latency_ms"], snap["cache"]
        hit_rate = cache["hit_rate"]
        print(f"matrix        : {args.domain}, n={L.n_rows}, nnz={L.nnz}")
        print(f"requests      : {req['total']} total, "
              f"{req['completed']} completed, {req['failed']} failed, "
              f"{req['timed_out']} timed out, {req['rejected']} rejected")
        print(f"batches       : {snap['batches']['total']} "
              f"(width mean {width['mean']:.1f}, max {width['max']:.0f})")
        print(f"latency (host): p50 {lat['p50']:.2f} ms, "
              f"p95 {lat['p95']:.2f} ms")
        lanes = snap["lanes"]
        print(f"lanes         : compiled "
              f"{lanes['compiled']['batches']} batch(es) "
              f"/ {lanes['compiled']['rhs']} rhs "
              f"({lanes['compiled']['exec_ms']:.3f} ms), "
              f"host {lanes['host']['batches']} batch(es) "
              f"/ {lanes['host']['rhs']} rhs "
              f"({lanes['host']['exec_ms']:.3f} ms), "
              f"sim {lanes['sim']['batches']} batch(es) "
              f"/ {lanes['sim']['rhs']} rhs")
        print(f"sim cost      : {snap['sim']['cycles']} cycles, "
              f"{snap['sim']['exec_ms']:.4f} ms")
        print(f"cache         : {cache['entries']} entr(y/ies), "
              f"hit rate {'n/a' if hit_rate is None else f'{hit_rate:.1%}'}, "
              f"{cache['evictions']} eviction(s)")
        print(f"fallbacks     : {snap['fallbacks']['solves']} solve(s), "
              f"{snap['fallbacks']['kernel_failures']} kernel failure(s)")
        tr = snap["trace"]
        kinds = ", ".join(f"{k} {v}" for k, v in tr["by_kind"].items())
        print(f"trace         : {tr['emitted']} event(s) "
              f"[{kinds or 'none'}], {tr['dropped']} dropped")
        if args.trace_log:
            print(f"trace log     : {tr['retained']} event(s) -> "
                  f"{args.trace_log}")
        if "journal" in snap:
            js = snap["journal"]
            print(f"journal       : {js['records_written']} record(s), "
                  f"{js['records_dropped']} dropped, "
                  f"{js['segments_rotated']} rotation(s), "
                  f"{js['incidents']} incident(s) -> {args.journal_dir}")
        print(f"max error     : {err:.3e}")
    return 0 if err < 1e-8 else 1


def _serve_stats_spans(args) -> int:
    """Tail-latency attribution: which hop makes slow requests slow?

    Drives a short session through a small sharded cluster with
    distributed tracing on, then prints per-hop latency percentiles
    (router enqueue/send, worker deserialize/plan/solve/reply) and the
    captured slow-request exemplars with their dominant hop.
    """
    import json

    from repro.datasets import generate
    from repro.serve.cluster import ShardRouter
    from repro.sparse import lower_triangular_system

    execution = "host" if args.execution == "auto" else args.execution
    systems = [
        lower_triangular_system(
            generate(args.domain, args.n_rows, args.seed + i)
        )
        for i in range(2)
    ]
    err = 0.0
    with ShardRouter(
        n_workers=max(args.workers, 1),
        execution=execution,
        max_batch=args.max_batch,
        slow_ms=args.slow_ms,
    ) as router:
        keys = [
            router.register(s.L, name=f"span-{i}")
            for i, s in enumerate(systems)
        ]
        futs = []
        for key, s in zip(keys, systems):
            for _ in range(max(args.requests, 0)):
                futs.append((router.submit(key, s.b, single=True), s.x_true))
            if args.rhs > 0:
                B = np.column_stack(
                    [(r + 1.0) * s.b for r in range(args.rhs)]
                )
                X_true = np.column_stack(
                    [(r + 1.0) * s.x_true for r in range(args.rhs)]
                )
                futs.append((router.submit(key, B), X_true))
        for fut, truth in futs:
            resp = fut.result(timeout=60.0)
            err = max(err, float(np.max(np.abs(resp.x - truth))))
        # the ping drains every worker's buffered spans and feeds the
        # clock aligner, so the stats below cover the whole session
        router.ping()
        hops = router.hop_stats()
        exemplars = router.exemplars()
        span_stats = router.router_stats()["spans"]

    if args.json:
        print(json.dumps({
            "hops": hops,
            "exemplars": [
                {k: v for k, v in ex.items() if k != "spans"}
                for ex in exemplars
            ],
            "spans": span_stats,
            "max_error": err,
        }, indent=2))
        return 0 if err < 1e-8 else 1

    print(f"spans         : {span_stats['spans']} across "
          f"{span_stats['traces']} trace(s)")
    name_w = max((len(h) for h in hops), default=3)
    print(f"{'hop'.ljust(name_w)}  {'count':>6}  {'p50 ms':>9}  "
          f"{'p99 ms':>9}  {'max ms':>9}")
    for hop in sorted(hops):
        hs = hops[hop]
        print(f"{hop.ljust(name_w)}  {hs['count']:>6}  "
              f"{hs['p50_ms']:>9.3f}  {hs['p99_ms']:>9.3f}  "
              f"{hs['max_ms']:>9.3f}")
    print(f"slow threshold: {span_stats['slow_threshold_ms']:.3f} ms "
          f"({'explicit' if args.slow_ms is not None else 'adaptive p95'})")
    if exemplars:
        print(f"exemplars     : {len(exemplars)} captured")
        for ex in exemplars:
            print(f"  {ex['trace_id']}  {ex['total_ms']:9.3f} ms  "
                  f"dominant hop: {ex['dominant_hop']}")
    else:
        print("exemplars     : none captured")
    print(f"max error     : {err:.3e}")
    return 0 if err < 1e-8 else 1


def _cmd_serve_cluster(args) -> int:
    """Drive the sharded multi-process serve tier end to end.

    Registers ``--matrices`` distinct synthetic systems with a
    :class:`~repro.serve.cluster.ShardRouter` (each plan built once,
    published to shared memory, adopted zero-copy by its shard worker),
    fires pipelined single- and multi-RHS solves against every matrix,
    verifies every answer against the manufactured solution, and prints
    the fleet-wide roll-up.  ``--chaos-kill`` SIGKILLs one worker
    mid-session and asserts the router respawns it and keeps answering
    correctly.  Exits non-zero on a bad residual or a leaked
    shared-memory segment.
    """
    import json

    from repro.datasets import generate
    from repro.errors import WorkerDiedError
    from repro.serve.arena import leaked_segments
    from repro.serve.cluster import ShardRouter
    from repro.sparse import lower_triangular_system

    emit = (lambda *a, **k: None) if (args.json or args.openmetrics) else print
    systems = [
        lower_triangular_system(
            generate(args.domain, args.n_rows, args.seed + i)
        )
        for i in range(max(args.matrices, 1))
    ]

    err = 0.0
    deaths_seen = 0
    with ShardRouter(
        n_workers=args.workers,
        execution=args.execution,
        max_batch=args.max_batch,
        request_timeout=args.timeout,
        journal_dir=args.journal_dir,
    ) as router:
        keys = [
            router.register(s.L, name=f"cli-{i}")
            for i, s in enumerate(systems)
        ]
        for i, key in enumerate(keys):
            emit(f"matrix {i}     : {key[:12]}… -> {router.worker_for(key)}")

        def fire() -> list:
            """Pipeline every request, then pair futures with truths."""
            futs = []
            for key, s in zip(keys, systems):
                for _ in range(max(args.requests, 0)):
                    futs.append(
                        (router.submit(key, s.b, single=True), s.x_true)
                    )
                if args.rhs > 0:
                    B = np.column_stack(
                        [(r + 1.0) * s.b for r in range(args.rhs)]
                    )
                    X_true = np.column_stack(
                        [(r + 1.0) * s.x_true for r in range(args.rhs)]
                    )
                    futs.append((router.submit(key, B), X_true))
            return futs

        def drain(futs: list, *, tolerate_deaths: bool) -> float:
            worst = 0.0
            nonlocal deaths_seen
            for fut, truth in futs:
                try:
                    resp = fut.result(timeout=args.timeout)
                except WorkerDiedError:
                    if not tolerate_deaths:
                        raise
                    deaths_seen += 1
                    continue
                worst = max(worst, float(np.max(np.abs(resp.x - truth))))
            return worst

        err = max(err, drain(fire(), tolerate_deaths=False))
        if args.chaos_kill:
            import time

            victim = router.worker_for(keys[0])
            futs = fire()
            router.kill_worker(victim)
            # in-flight requests on the victim fail with WorkerDiedError;
            # the router respawns the shard, so a retry must succeed
            # (the respawn runs in the reader thread — poll briefly)
            err = max(err, drain(futs, tolerate_deaths=True))
            for _ in range(100):
                try:
                    err = max(err, drain(fire(), tolerate_deaths=False))
                    break
                except WorkerDiedError:
                    time.sleep(0.2)
            else:  # pragma: no cover - respawn never landed
                raise WorkerDiedError(
                    f"cluster did not recover after killing {victim}"
                )
            emit(f"chaos         : killed {victim}, {deaths_seen} "
                 f"request(s) failed in flight, retries all correct")
        # ping before snapshotting: drains every worker's buffered
        # spans and feeds the clock aligner, so the exported traces and
        # the spans block in router_stats() cover the whole session
        router.ping()
        if args.trace_log:
            n_events = router.write_trace_jsonl(args.trace_log)
            emit(f"trace log     : {n_events} event(s) -> {args.trace_log}")
        if args.chrome_trace:
            doc = router.write_chrome_trace(args.chrome_trace)
            emit(f"chrome trace  : {doc['otherData']['spans']} span(s), "
                 f"{len(doc['otherData']['processes'])} process row(s) -> "
                 f"{args.chrome_trace}")
        snap = router.snapshot()
        om = router.openmetrics() if args.openmetrics else None
    leaked = leaked_segments()

    if args.openmetrics:
        sys.stdout.write(om)
    elif args.json:
        print(json.dumps({
            "snapshot": snap,
            "max_error": err,
            "chaos_kill": bool(args.chaos_kill),
            "in_flight_failures": deaths_seen,
            "leaked_segments": leaked,
        }, indent=2))
    else:
        fleet, rt = snap["fleet"], snap["router"]
        req = fleet["requests"]
        print(f"workers       : {rt['workers']} "
              f"({', '.join(sorted(snap['workers']))})")
        print(f"requests      : {req['total']} total, "
              f"{req['completed']} completed, {req['failed']} failed")
        print(f"batches       : {fleet['batches']['total']} "
              f"(width mean {fleet['batches']['width']['mean']:.1f})")
        print(f"latency (p95) : {fleet['latency_ms']['p95']:.2f} ms "
              "(count-weighted across workers)")
        print(f"deaths        : {rt['worker_deaths']} worker death(s), "
              f"{rt['respawns']} respawn(s)")
        print(f"arena         : {rt['arena']['resident']} plan segment(s), "
              f"{rt['arena']['resident_bytes']} bytes shared")
        print(f"slabs         : {rt['slabs']['created']} created, "
              f"{rt['slabs']['reused']} reused")
        if args.journal_dir:
            fj = fleet["journal"]
            print(f"journal       : {fj['records_written']} record(s) "
                  f"across {fj['shards']} shard(s), "
                  f"{fj['records_dropped']} dropped -> {args.journal_dir}")
        print(f"leaked shm    : {len(leaked)}")
        print(f"max error     : {err:.3e}")
    return 0 if err < 1e-8 and not leaked else 1


def _cmd_serve_top(args) -> int:
    """Live fleet dashboard (``top`` for the sharded serve tier).

    Two sources: ``--url`` scrapes any OpenMetrics endpoint that
    renders the fleet exposition; ``--demo`` spawns a small in-process
    cluster, fires a trickle of solves each refresh, and dashboards its
    own exposition.  Frames repaint in place on a TTY and print
    sequentially when piped.
    """
    import time

    from repro.metrics.dashboard import render_dashboard
    from repro.metrics.expo import parse_openmetrics

    if not args.url and not args.demo:
        print("serve-top needs --url URL or --demo", file=sys.stderr)
        return 2

    clear = "\x1b[2J\x1b[H" if sys.stdout.isatty() else ""

    def paint(text: str, frame: int) -> None:
        dashboard = render_dashboard(parse_openmetrics(text))
        if clear:
            sys.stdout.write(clear + dashboard)
        else:
            if frame:
                sys.stdout.write("\n")
            sys.stdout.write(dashboard)
        sys.stdout.flush()

    frames = range(args.iterations) if args.iterations > 0 else iter(int, 1)
    if args.url:
        from urllib.request import urlopen

        try:
            for frame, _ in enumerate(frames):
                if frame:
                    time.sleep(args.interval)
                with urlopen(args.url) as resp:
                    paint(resp.read().decode("utf-8"), frame)
        except KeyboardInterrupt:
            pass
        return 0

    from repro.datasets import generate
    from repro.serve.cluster import ShardRouter
    from repro.sparse import lower_triangular_system

    systems = [
        lower_triangular_system(
            generate(args.domain, args.n_rows, args.seed + i)
        )
        for i in range(max(args.matrices, 1))
    ]
    with ShardRouter(n_workers=max(args.workers, 1)) as router:
        keys = [
            router.register(s.L, name=f"top-{i}")
            for i, s in enumerate(systems)
        ]
        try:
            for frame, _ in enumerate(frames):
                if frame:
                    time.sleep(args.interval)
                futs = [
                    router.submit(key, s.b, single=True)
                    for key, s in zip(keys, systems)
                    for _ in range(max(args.requests, 1))
                ]
                for fut in futs:
                    fut.result(timeout=60.0)
                router.ping()  # span drain + clock samples
                paint(router.openmetrics(), frame)
        except KeyboardInterrupt:
            pass
    return 0


def _cmd_check_interleavings(args) -> int:
    """Explore serve-engine schedules under the deterministic scheduler.

    Every scenario must satisfy the engine invariant suite (each
    request resolved exactly once, engine idle after drain, telemetry
    counters consistent) on every explored schedule.  A failure prints
    the minimal reproducing choice list and its schedule trace —
    rerunning with the same seed/choices reproduces it byte for byte.
    """
    import json

    from repro.analysis.interleave import explore
    from repro.serve.scenarios import SCENARIOS, engine_invariants

    if args.scenario != "all" and args.scenario not in SCENARIOS:
        print(
            f"unknown scenario {args.scenario!r}; choose from: "
            + ", ".join(sorted(SCENARIOS)) + ", all",
            file=sys.stderr,
        )
        return 2
    names = sorted(SCENARIOS) if args.scenario == "all" else [args.scenario]
    invariants = engine_invariants()
    rc = 0
    doc = {}
    for name in names:
        report = explore(
            SCENARIOS[name],
            schedules=args.schedules,
            seed=args.seed,
            mode=args.mode,
            invariants=invariants,
        )
        doc[name] = {
            "mode": report.mode,
            "n_schedules": report.n_schedules,
            "ok": report.ok,
            "failures": len(report.failures),
            "minimal_choices": (
                list(report.minimal_choices)
                if report.minimal_choices is not None
                else None
            ),
        }
        if not args.json:
            print(f"[{name}] {report.summary()}")
        if not report.ok:
            rc = 1
    if args.json:
        print(json.dumps(doc, indent=2))
    return rc


def _cmd_replay(args) -> int:
    """Replay a recorded trace log through a fresh engine."""
    import json

    from repro.serve.replay import replay_file

    report = replay_file(
        args.trace,
        speed=args.speed,
        virtual=not args.wall,
        n=args.n,
        batch_window=args.batch_window,
        execution=args.execution,
        workers=args.workers,
        journal_dir=args.journal_dir,
    )
    if args.json:
        print(json.dumps({
            "recorded": report.recorded,
            "replayed": report.replayed,
            "speed": report.speed,
            "virtual": report.virtual,
            "n_matrices": report.n_matrices,
            "workers": report.workers,
            "ok": report.ok,
            "mismatches": report.mismatches,
        }, indent=2))
    else:
        print(report.summary())
    return 0 if report.ok else 1


def _cmd_journal(args) -> int:
    """Inspect a solve journal directory.

    ``tail`` and ``query`` print matching records as JSONL; ``report``
    runs the lane-efficacy aggregator and uses regress-style exit
    codes — 0 healthy, 1 anomalies flagged, 2 journal unreadable — so
    CI can gate on it the same way it gates on ``regress``.
    """
    import json
    from pathlib import Path

    from repro.errors import JournalError
    from repro.obs.journal import JournalReader

    reader = JournalReader(args.dir)
    try:
        scan = reader.scan()
    except JournalError as exc:
        print(f"journal: {exc}", file=sys.stderr)
        return 2

    if args.verb == "tail":
        for record in scan["records"][-max(args.n, 0):]:
            print(json.dumps(record, sort_keys=True, default=str))
        return 0

    if args.verb == "query":
        records = scan["records"]
        if args.kind is not None:
            records = [r for r in records if r.get("kind") == args.kind]
        if args.matrix is not None:
            records = [
                r for r in records
                if str(r.get("matrix", "")).startswith(args.matrix)
            ]
        if args.lane is not None:
            records = [r for r in records if r.get("lane") == args.lane]
        if args.limit > 0:
            records = records[-args.limit:]
        for record in records:
            print(json.dumps(record, sort_keys=True, default=str))
        print(
            f"{len(records)} record(s) from {scan['segments']} segment(s), "
            f"{scan['skipped']} skipped line(s)",
            file=sys.stderr,
        )
        return 0

    # report
    from repro.metrics.efficacy import (
        DEFAULT_MIN_SAMPLES,
        aggregate,
        healthy,
        lane_recommendations,
        render_report,
    )

    report = aggregate(
        scan["records"],
        min_samples=(
            DEFAULT_MIN_SAMPLES if args.min_samples is None
            else args.min_samples
        ),
        skipped=scan["skipped"],
    )
    out = Path(args.out) if args.out else Path(args.dir) / (
        "lane_recommendations.json"
    )
    out.write_text(json.dumps({
        "schema": report["schema"],
        "recommendations": lane_recommendations(report),
        "min_samples": report["min_samples"],
        "solves": report["solves"],
    }, indent=2, sort_keys=True) + "\n")
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True, default=str))
    else:
        print(render_report(report))
        print(f"recommendations -> {out}")
    return 0 if healthy(report) else 1


def _cmd_generate(args) -> int:
    from repro.datasets import generate
    from repro.sparse import write_matrix_market

    L = generate(args.domain, args.n_rows, args.seed)
    write_matrix_market(
        L, args.out,
        comment=f"repro synthetic domain={args.domain} n={args.n_rows} "
        f"seed={args.seed}",
    )
    print(f"wrote {args.out}: n={L.n_rows}, nnz={L.nnz}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
