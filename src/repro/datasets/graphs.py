"""Graph-application matrices (42% of the paper's 245-matrix suite).

Lower-triangularized adjacency structures of synthetic graphs.  Scale-free
attachment puts hubs at low indices, so most rows depend on a handful of
early rows — levels are wide and rows are thin, i.e. exactly the high
parallel granularity regime the paper identifies as common "in graph
applications" (Section 1).
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.datasets.base import finalize_pattern, require, rng_from_seed
from repro.sparse.csr import CSRMatrix

__all__ = ["scale_free_graph", "social_graph", "road_network"]

#: Above this node count the exact networkx constructions are replaced by
#: vectorized samplers with the same degree/level signature (networkx
#: builds are O(n) Python objects — minutes at suite scale).
_NETWORKX_LIMIT = 20_000


def _edges_to_matrix(
    n: int, edges: np.ndarray, rng: np.random.Generator
) -> CSRMatrix:
    """Undirected edge list -> strictly-lower pattern -> solvable CSR."""
    if edges.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return finalize_pattern(n, empty, empty, rng)
    u = edges[:, 0]
    v = edges[:, 1]
    rows = np.maximum(u, v)
    cols = np.minimum(u, v)
    keep = rows != cols
    return finalize_pattern(n, rows[keep], cols[keep], rng)


def scale_free_graph(
    n_rows: int,
    seed: int | None = 0,
    *,
    attachment: int = 3,
) -> CSRMatrix:
    """Barabási–Albert preferential attachment (wiki-Talk-like hubs).

    ``attachment`` edges per new node; α ≈ attachment + 1, levels very
    wide (granularity typically 0.8-1.1).
    """
    require(n_rows > attachment, "n_rows must exceed attachment")
    require(attachment >= 1, "attachment must be >= 1")
    rng = rng_from_seed(seed)
    if n_rows <= _NETWORKX_LIMIT:
        g = nx.barabasi_albert_graph(
            n_rows, attachment, seed=int(rng.integers(2**31))
        )
        edges = np.asarray(list(g.edges()), dtype=np.int64)
        return _edges_to_matrix(n_rows, edges, rng)
    # Vectorized approximation of preferential attachment for large n:
    # node i attaches to floor(i * u^s) with s = 3, which reproduces the
    # hubs-at-low-indices degree skew the exact BA process yields (and
    # that drives the wide, shallow level structure of graph matrices).
    new = np.repeat(np.arange(1, n_rows, dtype=np.int64), attachment)
    old = (rng.random(len(new)) ** 3.0 * new).astype(np.int64)
    edges = np.stack([new, old], axis=1)
    return _edges_to_matrix(n_rows, edges, rng)


def social_graph(
    n_rows: int,
    seed: int | None = 0,
    *,
    attachment: int = 4,
    triangle_prob: float = 0.3,
) -> CSRMatrix:
    """Power-law graph with triangle closure (social-network clustering)."""
    require(n_rows > attachment, "n_rows must exceed attachment")
    require(0.0 <= triangle_prob <= 1.0, "triangle_prob must be in [0, 1]")
    rng = rng_from_seed(seed)
    if n_rows <= _NETWORKX_LIMIT:
        g = nx.powerlaw_cluster_graph(
            n_rows, attachment, triangle_prob, seed=int(rng.integers(2**31))
        )
        edges = np.asarray(list(g.edges()), dtype=np.int64)
        return _edges_to_matrix(n_rows, edges, rng)
    # Large n: power-law attachment plus triangle closure approximated by
    # rewiring a triangle_prob share of edges to a neighbour's neighbour
    # (a nearby low index), which preserves the clustering signature that
    # distinguishes social graphs from pure BA.
    new = np.repeat(np.arange(1, n_rows, dtype=np.int64), attachment)
    old = (rng.random(len(new)) ** 2.5 * new).astype(np.int64)
    closing = rng.random(len(new)) < triangle_prob
    jitter = rng.integers(0, 4, size=len(new))
    old = np.where(closing, np.maximum(old - jitter, 0), old)
    edges = np.stack([new, old], axis=1)
    return _edges_to_matrix(n_rows, edges, rng)


def road_network(
    n_rows: int,
    seed: int | None = 0,
    *,
    extra_edge_fraction: float = 0.2,
) -> CSRMatrix:
    """Near-planar mesh with shortcuts (road-network-like).

    A random geometric-ish structure: grid backbone plus random local
    shortcuts, randomly relabeled so levels are neither pure wavefronts
    nor trivially wide — mid-range granularity.
    """
    require(n_rows >= 16, "n_rows must be >= 16")
    require(extra_edge_fraction >= 0, "extra_edge_fraction must be >= 0")
    rng = rng_from_seed(seed)
    nx_side = max(4, int(np.sqrt(n_rows)))
    n = nx_side * nx_side

    # grid backbone under a random node relabeling
    perm = rng.permutation(n).astype(np.int64)
    idx = np.arange(n, dtype=np.int64)
    ix = idx % nx_side
    iy = idx // nx_side
    e_right = np.stack([idx[ix > 0], idx[ix > 0] - 1], axis=1)
    e_up = np.stack([idx[iy > 0], idx[iy > 0] - nx_side], axis=1)
    edges = np.concatenate([e_right, e_up])
    n_extra = int(extra_edge_fraction * len(edges))
    if n_extra:
        a = rng.integers(0, n, size=n_extra)
        b = np.clip(
            a + rng.integers(-3 * nx_side, 3 * nx_side, size=n_extra), 0, n - 1
        )
        edges = np.concatenate([edges, np.stack([a, b], axis=1)])
    edges = perm[edges]
    return _edges_to_matrix(n, edges, rng)
