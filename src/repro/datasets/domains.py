"""Domain-specific generators: circuit, LP, optimization, combinatorial.

Each mimics the structural signature the paper reports for its domain
(Table 6 case studies and the Section 5.2 domain breakdown): circuit
matrices have rail-dominated, extremely wide levels with ~3-5 nonzeros
per row; LP matrices are the extreme of granularity (lp1 peaks the
speedup plot at δ = 1.18); optimization/KKT systems are moderately dense
with wide levels; combinatorial matrices sit in between.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import finalize_pattern, require, rng_from_seed
from repro.sparse.csr import CSRMatrix

__all__ = ["circuit", "linear_programming", "optimization_kkt", "combinatorial"]


def circuit(
    n_rows: int,
    seed: int | None = 0,
    *,
    avg_nnz_per_row: float = 4.0,
    rail_count: int = 24,
    rail_prob: float = 0.75,
    local_window: int = 6,
) -> CSRMatrix:
    """Circuit-simulation structure (rajat29 / circuit5M_dc-like).

    Every node couples mostly to a few global "rails" (ground, supply —
    the low-index rows) and occasionally to nearby nodes.  Rail coupling
    keeps levels extremely wide (β in the thousands); the sparse local
    coupling caps depth at roughly the longest local run.
    """
    require(n_rows > rail_count, "n_rows must exceed rail_count")
    require(avg_nnz_per_row >= 1, "avg_nnz_per_row must be >= 1")
    require(0.0 <= rail_prob <= 1.0, "rail_prob must be in [0, 1]")
    rng = rng_from_seed(seed)
    counts = 1 + rng.poisson(max(avg_nnz_per_row - 2.0, 0.1), size=n_rows)
    counts = np.minimum(counts, np.arange(n_rows))
    rows = np.repeat(np.arange(n_rows, dtype=np.int64), counts)
    use_rail = rng.random(len(rows)) < rail_prob
    rail_cols = rng.integers(0, rail_count, size=len(rows))
    offs = rng.integers(1, local_window + 1, size=len(rows))
    local_cols = np.maximum(rows - offs, 0)
    cols = np.where(use_rail, np.minimum(rail_cols, rows - 1), local_cols)
    return finalize_pattern(n_rows, rows, cols, rng)


def linear_programming(
    n_rows: int,
    seed: int | None = 0,
    *,
    avg_nnz_per_row: float = 2.5,
    basis_fraction: float = 0.02,
    chain_prob: float = 0.15,
) -> CSRMatrix:
    """LP basis-factor structure (lp1-like: the granularity extreme).

    Most dependencies point into a tiny leading "basis" block (levels
    stay few and enormous); a small ``chain_prob`` share targets
    arbitrary earlier rows, giving the shallow-but-nonzero depth real LP
    factors show.  β lands in the tens of thousands with α near 2-3 —
    granularity around 0.9-1.1, where the paper measures its largest
    speedups (34.77x on lp1, Figure 5).
    """
    require(n_rows >= 32, "n_rows must be >= 32")
    require(avg_nnz_per_row >= 1, "avg_nnz_per_row must be >= 1")
    require(0.0 < basis_fraction < 1.0, "basis_fraction must be in (0, 1)")
    require(0.0 <= chain_prob <= 1.0, "chain_prob must be in [0, 1]")
    rng = rng_from_seed(seed)
    basis = max(2, int(basis_fraction * n_rows))
    counts = 1 + rng.poisson(max(avg_nnz_per_row - 1.5, 0.1), size=n_rows)
    counts = np.minimum(counts, np.arange(n_rows))
    # basis rows are dependency-free (slack/identity columns of the
    # factor), so the bulk of the system solves in a handful of levels
    counts[:basis] = 0
    rows = np.repeat(np.arange(n_rows, dtype=np.int64), counts)
    basis_cols = np.minimum(
        rng.integers(0, basis, size=len(rows)), np.maximum(rows - 1, 0)
    )
    chain_cols = (rng.random(len(rows)) * rows).astype(np.int64)
    chained = rng.random(len(rows)) < chain_prob
    cols = np.where(chained, chain_cols, basis_cols)
    return finalize_pattern(n_rows, rows, cols, rng)


def optimization_kkt(
    n_rows: int,
    seed: int | None = 0,
    *,
    avg_nnz_per_row: float = 12.0,
    block_count: int = 8,
) -> CSRMatrix:
    """KKT-system structure (nlpkkt-like).

    Rows fall into ``block_count`` blocks; dependencies point mostly into
    *earlier blocks* (constraint coupling), giving roughly ``block_count``
    wide levels with moderately dense rows.
    """
    require(n_rows >= block_count * 4, "n_rows too small for block_count")
    require(avg_nnz_per_row >= 1, "avg_nnz_per_row must be >= 1")
    rng = rng_from_seed(seed)
    block = n_rows // block_count
    counts = rng.poisson(avg_nnz_per_row - 1.0, size=n_rows)
    counts = np.minimum(counts, np.arange(n_rows))
    rows = np.repeat(np.arange(n_rows, dtype=np.int64), counts)
    # dependency lands uniformly inside the previous block (or the block
    # head for rows of block 0)
    blk = rows // block
    prev_lo = np.maximum(blk - 1, 0) * block
    prev_hi = np.maximum(blk * block, 1)
    span = np.maximum(prev_hi - prev_lo, 1)
    cols = prev_lo + (rng.random(len(rows)) * span).astype(np.int64)
    cols = np.minimum(cols, rows - 1)
    return finalize_pattern(n_rows, rows, cols, rng)


def combinatorial(
    n_rows: int,
    seed: int | None = 0,
    *,
    avg_nnz_per_row: float = 3.0,
    skew: float = 2.0,
) -> CSRMatrix:
    """Combinatorial-problem structure (assignment/covering-like).

    Dependencies are skewed toward early rows with a power-law exponent
    ``skew`` — wider levels than uniform random, thinner than circuit
    rails: granularity typically 0.6-0.9.
    """
    require(n_rows >= 8, "n_rows must be >= 8")
    require(avg_nnz_per_row >= 1, "avg_nnz_per_row must be >= 1")
    require(skew >= 1.0, "skew must be >= 1.0")
    rng = rng_from_seed(seed)
    counts = rng.poisson(avg_nnz_per_row, size=n_rows)
    counts = np.minimum(counts, np.arange(n_rows))
    rows = np.repeat(np.arange(n_rows, dtype=np.int64), counts)
    # power-law skew toward column 0
    u = rng.random(len(rows))
    cols = (u**skew * rows).astype(np.int64)
    return finalize_pattern(n_rows, rows, cols, rng)
