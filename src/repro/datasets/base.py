"""Shared helpers for the matrix generators."""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError
from repro.sparse.coo import COOMatrix
from repro.sparse.convert import coo_to_csr
from repro.sparse.csr import CSRMatrix
from repro.sparse.triangular import make_unit_lower_triangular

__all__ = ["finalize_pattern", "require", "rng_from_seed"]


def rng_from_seed(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Normalize a seed/generator argument to a Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def require(condition: bool, message: str) -> None:
    """Parameter validation with the package's error type."""
    if not condition:
        raise DatasetError(message)


def finalize_pattern(
    n: int,
    rows: np.ndarray,
    cols: np.ndarray,
    rng: np.random.Generator,
) -> CSRMatrix:
    """Turn a strictly-lower-triangular *pattern* into a solvable system.

    Applies the paper's Section 5.1 preprocessing — keep the lower-left
    pattern, install a unit diagonal — and assigns off-diagonal values
    scaled by each row's population so deep dependency chains stay well
    conditioned (|x| neither explodes nor vanishes along the solve).
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    keep = cols < rows  # strict lower triangle only
    rows, cols = rows[keep], cols[keep]
    values = rng.uniform(0.2, 1.0, size=len(rows)) * rng.choice(
        (-1.0, 1.0), size=len(rows)
    )
    pattern = coo_to_csr(COOMatrix(n, n, rows, cols, values))
    # normalize row magnitudes: sum of |off-diag| per row kept below ~0.9
    lengths = pattern.row_lengths()
    row_ids = np.repeat(np.arange(n, dtype=np.int64), lengths)
    abs_sum = np.zeros(n)
    np.add.at(abs_sum, row_ids, np.abs(pattern.values))
    scale = np.ones(n)
    heavy = abs_sum > 0.9
    scale[heavy] = 0.9 / abs_sum[heavy]
    scaled = pattern.with_values(pattern.values * scale[row_ids])
    return make_unit_lower_triangular(scaled)
