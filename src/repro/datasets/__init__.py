"""Synthetic matrix collection.

The paper evaluates on 873 matrices from the University of Florida
(SuiteSparse) collection, 245 of which have parallel granularity > 0.7.
That collection cannot be downloaded here, so this package generates
structurally equivalent matrices: one generator per application domain
the paper's breakdown names (Section 5.2 — graphs 42.0%, circuit
simulation 13.9%, combinatorial 11.0%, linear programming 9.4%,
optimization 8.6%, remainder FEM/stencil-like), plus named stand-ins for
every matrix the paper cites by name, matched on the *structural*
statistics the evaluation consumes (average nonzeros per row α, average
components per level β, and hence the parallel granularity δ).

All generators return unit-lower-triangular CSR matrices (the paper's own
dataset preprocessing, Section 5.1) and are deterministic given a seed.
"""

from repro.datasets.registry import DOMAINS, generate, list_generators
from repro.datasets.named import NAMED_MATRICES, named_matrix
from repro.datasets.suite import (
    SuiteEntry,
    cached_evaluation_suite,
    cached_full_sweep_suite,
    evaluation_suite,
    full_sweep_suite,
)

__all__ = [
    "DOMAINS",
    "generate",
    "list_generators",
    "NAMED_MATRICES",
    "named_matrix",
    "SuiteEntry",
    "cached_evaluation_suite",
    "cached_full_sweep_suite",
    "evaluation_suite",
    "full_sweep_suite",
]
