"""Generator registry: one name per application domain."""

from __future__ import annotations

from typing import Callable

from repro.datasets import domains, graphs, synthetic
from repro.errors import DatasetError
from repro.sparse.csr import CSRMatrix

__all__ = ["DOMAINS", "generate", "list_generators"]

GeneratorFn = Callable[..., CSRMatrix]

#: Domain name -> generator.  Names mirror the paper's Section 5.2
#: domain breakdown plus the elementary structures.
DOMAINS: dict[str, GeneratorFn] = {
    # the paper's evaluation domains
    "graph": graphs.scale_free_graph,
    "social": graphs.social_graph,
    "road": graphs.road_network,
    "circuit": domains.circuit,
    "lp": domains.linear_programming,
    "optimization": domains.optimization_kkt,
    "combinatorial": domains.combinatorial,
    # elementary / low-granularity structures
    "fem": synthetic.banded,
    "stencil": synthetic.stencil2d,
    "random": synthetic.random_lower,
    "chain": synthetic.chain,
    "diagonal": synthetic.diagonal,
}


def list_generators() -> list[str]:
    """Registered domain names, sorted."""
    return sorted(DOMAINS)


def generate(domain: str, n_rows: int, seed: int | None = 0, **params) -> CSRMatrix:
    """Generate a unit-lower-triangular matrix of the given domain.

    >>> L = generate("circuit", 2000, seed=7)
    >>> L.n_rows
    2000
    """
    try:
        fn = DOMAINS[domain]
    except KeyError:
        raise DatasetError(
            f"unknown domain {domain!r}; available: {', '.join(list_generators())}"
        ) from None
    return fn(n_rows, seed, **params)
