"""Evaluation-suite builders.

Two suites mirror the paper's dataset methodology (Section 5.1-5.2):

* :func:`evaluation_suite` — the "245 matrices with parallel granularity
  > 0.7" set, drawn with the paper's domain mix (graphs 42.0%, circuit
  13.9%, combinatorial 11.0%, LP 9.4%, optimization 8.6%, remainder
  mixed).  Generators are re-drawn with fresh parameters until each
  candidate clears the granularity threshold.
* :func:`full_sweep_suite` — a granularity-spanning set (including the
  low-granularity FEM/stencil/chain regimes) used for Figure 3's
  performance-trend curve and Figure 6's winner map.

Both are deterministic given the seed and return features precomputed,
so experiments never re-run level analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.analysis.features import MatrixFeatures, extract_features
from repro.analysis.granularity import HIGH_GRANULARITY_THRESHOLD
from repro.datasets.registry import generate
from repro.errors import DatasetError
from repro.sparse.csr import CSRMatrix

__all__ = [
    "SuiteEntry",
    "evaluation_suite",
    "full_sweep_suite",
    "cached_evaluation_suite",
    "cached_full_sweep_suite",
]


@dataclass(frozen=True)
class SuiteEntry:
    """One suite matrix with its precomputed features."""

    name: str
    domain: str
    matrix: CSRMatrix
    features: MatrixFeatures


#: (domain, weight) — the paper's Section 5.2 mix.  Graph applications
#: (42.0%) split across the two graph generators; the 15.1% remainder is
#: mixed provenance (skewed random + wide optimization structures).
_EVAL_MIX: tuple[tuple[str, float], ...] = (
    ("graph", 0.30),
    ("social", 0.12),        # graph applications together: 42%
    ("circuit", 0.139),
    ("combinatorial", 0.11),
    ("lp", 0.094),
    ("optimization", 0.086),
    ("random", 0.151),       # remainder: mixed provenance
)


def _random_params(domain: str, rng: np.random.Generator) -> dict:
    """Randomized generator parameters per domain (keeps the suite from
    being 245 copies of one structure)."""
    if domain == "graph":
        return {"attachment": int(rng.integers(2, 6))}
    if domain == "social":
        return {
            "attachment": int(rng.integers(2, 6)),
            "triangle_prob": float(rng.uniform(0.1, 0.5)),
        }
    if domain == "road":
        return {"extra_edge_fraction": float(rng.uniform(0.0, 0.4))}
    if domain == "circuit":
        return {
            "avg_nnz_per_row": float(rng.uniform(2.5, 6.0)),
            "rail_count": int(rng.integers(8, 48)),
            "rail_prob": float(rng.uniform(0.6, 0.9)),
        }
    if domain == "lp":
        return {
            "avg_nnz_per_row": float(rng.uniform(2.0, 4.0)),
            "basis_fraction": float(rng.uniform(0.005, 0.05)),
            "chain_prob": float(rng.uniform(0.05, 0.25)),
        }
    if domain == "optimization":
        return {
            "avg_nnz_per_row": float(rng.uniform(3.0, 8.0)),
            "block_count": int(rng.integers(3, 7)),
        }
    if domain == "combinatorial":
        return {
            "avg_nnz_per_row": float(rng.uniform(2.0, 5.0)),
            "skew": float(rng.uniform(1.5, 4.0)),
        }
    if domain == "fem":
        return {
            "bandwidth": int(rng.integers(8, 48)),
            "fill": float(rng.uniform(0.5, 1.0)),
        }
    if domain == "stencil":
        return {"aspect": float(rng.uniform(0.5, 2.0))}
    if domain == "random":
        return {"avg_nnz_per_row": float(rng.uniform(2.0, 4.5))}
    if domain == "chain":
        return {"width": int(rng.integers(1, 4))}
    return {}


def evaluation_suite(
    n_matrices: int = 245,
    *,
    seed: int = 2020,
    min_rows: int = 100_000,
    max_rows: int = 350_000,
    granularity_threshold: float = HIGH_GRANULARITY_THRESHOLD,
    max_attempts_per_matrix: int = 12,
) -> list[SuiteEntry]:
    """The high-granularity evaluation set (paper Section 5.2).

    Every returned matrix has parallel granularity above the threshold;
    the domain mix follows the paper's breakdown.  Row counts default to
    the 100k-350k range: Equation 1's granularity grows with the absolute
    level width, so reaching the paper's delta > 0.7 regime — and the
    ~10 residency rounds per level that throttle warp-level SpTRSV
    (beta ~ 10^4 vs ~1-5k resident warps) — requires paper-scale level
    widths.  These matrices are meant for
    the analytic tier; the cycle simulator uses the smaller named
    stand-ins.
    """
    if n_matrices <= 0:
        raise DatasetError("n_matrices must be positive")
    rng = np.random.default_rng(seed)
    quotas = _quotas(n_matrices)
    entries: list[SuiteEntry] = []
    for domain, quota in quotas.items():
        built = 0
        attempts = 0
        while built < quota:
            attempts += 1
            if attempts > quota * max_attempts_per_matrix:
                raise DatasetError(
                    f"domain {domain!r} cannot reach granularity "
                    f"> {granularity_threshold} often enough "
                    f"({built}/{quota} after {attempts} attempts)"
                )
            n = int(rng.integers(min_rows, max_rows + 1))
            params = _random_params(domain, rng)
            matrix = generate(domain, n, int(rng.integers(2**31)), **params)
            features = extract_features(matrix)
            if features.granularity <= granularity_threshold:
                continue
            entries.append(
                SuiteEntry(
                    name=f"{domain}-{built:03d}",
                    domain=domain,
                    matrix=matrix,
                    features=features,
                )
            )
            built += 1
    return entries


def full_sweep_suite(
    n_matrices: int = 120,
    *,
    seed: int = 873,
    min_rows: int = 50_000,
    max_rows: int = 200_000,
) -> list[SuiteEntry]:
    """A granularity-spanning set for Figure 3 / Figure 6.

    No granularity filter: includes the deep-level FEM / stencil / chain
    structures where warp-level SpTRSV wins, through the wide-level
    graph/LP structures where it collapses.
    """
    if n_matrices <= 0:
        raise DatasetError("n_matrices must be positive")
    rng = np.random.default_rng(seed)
    domains = (
        "fem", "stencil", "random", "chain",
        "graph", "social", "road", "circuit",
        "combinatorial", "lp", "optimization",
    )
    entries: list[SuiteEntry] = []
    for k in range(n_matrices):
        domain = domains[k % len(domains)]
        n = int(rng.integers(min_rows, max_rows + 1))
        params = _random_params(domain, rng)
        matrix = generate(domain, n, int(rng.integers(2**31)), **params)
        entries.append(
            SuiteEntry(
                name=f"{domain}-sweep-{k:03d}",
                domain=domain,
                matrix=matrix,
                features=extract_features(matrix),
            )
        )
    return entries


@lru_cache(maxsize=4)
def cached_evaluation_suite(
    n_matrices: int = 36, seed: int = 2020
) -> tuple[SuiteEntry, ...]:
    """Process-cached :func:`evaluation_suite` (suite builds take minutes;
    the experiment and benchmark modules share one build per session).
    Treat the result as immutable."""
    return tuple(evaluation_suite(n_matrices, seed=seed))


@lru_cache(maxsize=4)
def cached_full_sweep_suite(
    n_matrices: int = 44, seed: int = 873
) -> tuple[SuiteEntry, ...]:
    """Process-cached :func:`full_sweep_suite`; treat as immutable."""
    return tuple(full_sweep_suite(n_matrices, seed=seed))


def _quotas(n_matrices: int) -> dict[str, int]:
    """Integer per-domain quotas honoring the evaluation mix."""
    quotas = {
        domain: int(round(weight * n_matrices)) for domain, weight in _EVAL_MIX
    }
    # fix rounding drift on the largest bucket
    drift = n_matrices - sum(quotas.values())
    quotas["graph"] += drift
    return {d: q for d, q in quotas.items() if q > 0}
