"""Named stand-ins for the matrices the paper cites individually.

The real SuiteSparse matrices are unavailable offline, so each paper
matrix gets a generator recipe reproducing its *structural* profile —
average nonzeros per row (α), the character of its level structure (β),
and therefore its parallel granularity (δ) — at a scale the cycle
simulator can execute in seconds.  The paper statistics recorded here
come from Tables 1, 5 and 6 and Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.datasets.registry import generate
from repro.errors import DatasetError
from repro.sparse.csr import CSRMatrix

__all__ = ["NamedMatrixSpec", "NAMED_MATRICES", "named_matrix"]


@dataclass(frozen=True)
class NamedMatrixSpec:
    """Recipe and provenance for one named stand-in."""

    paper_name: str
    domain: str
    n_rows: int
    params: dict[str, Any] = field(default_factory=dict)
    #: structural statistics the paper reports for the real matrix
    paper_stats: dict[str, float] = field(default_factory=dict)
    description: str = ""

    def build(self, *, seed: int = 0, scale: float = 1.0) -> CSRMatrix:
        n = max(64, int(self.n_rows * scale))
        return generate(self.domain, n, seed, **self.params)


#: Stand-ins for every matrix named in the paper's evaluation.
NAMED_MATRICES: dict[str, NamedMatrixSpec] = {
    "nlpkkt160": NamedMatrixSpec(
        paper_name="nlpkkt160",
        domain="optimization",
        n_rows=4096,
        params={"avg_nnz_per_row": 13.0, "block_count": 10},
        paper_stats={"table1_prep_levelset_ms": 310.07,
                     "table1_exec_syncfree_ms": 27.73},
        description="KKT system of a nonlinear program (Table 1 case study; "
        "the 27.3% last-element-check overhead example of Section 3.3)",
    ),
    "wiki-Talk": NamedMatrixSpec(
        paper_name="wiki-Talk",
        domain="social",
        n_rows=4000,
        params={"attachment": 2, "triangle_prob": 0.2},
        paper_stats={"table1_prep_levelset_ms": 31.09,
                     "table1_exec_syncfree_ms": 10.02},
        description="communication graph with hub structure (Table 1)",
    ),
    "cant": NamedMatrixSpec(
        paper_name="cant",
        domain="fem",
        n_rows=2048,
        params={"bandwidth": 32, "fill": 0.95},
        paper_stats={"table1_prep_levelset_ms": 4.81,
                     "table1_exec_syncfree_ms": 5.02},
        description="FEM cantilever: dense banded rows, deep levels — the "
        "low-granularity regime where SyncFree wins (Table 1)",
    ),
    "rajat29": NamedMatrixSpec(
        paper_name="rajat29",
        domain="circuit",
        n_rows=4096,
        params={"avg_nnz_per_row": 4.9, "rail_count": 20, "rail_prob": 0.8},
        paper_stats={"delta": 0.78, "alpha": 4.89, "beta": 14636.23,
                     "capellini_gflops": 7.91, "syncfree_gflops": 1.67},
        description="circuit simulation (Table 6 case study)",
    ),
    "bayer01": NamedMatrixSpec(
        paper_name="bayer01",
        domain="circuit",
        n_rows=4096,
        params={"avg_nnz_per_row": 3.4, "rail_count": 28, "rail_prob": 0.72},
        paper_stats={"delta": 0.87, "alpha": 3.39, "beta": 9622.50,
                     "capellini_gflops": 3.95, "syncfree_gflops": 0.90},
        description="chemical process simulation (Table 6; Turing's maximum "
        "cuSPARSE speedup matrix, 107x, Table 5)",
    ),
    "circuit5M_dc": NamedMatrixSpec(
        paper_name="circuit5M_dc",
        domain="circuit",
        n_rows=5000,
        params={"avg_nnz_per_row": 3.0, "rail_count": 16, "rail_prob": 0.85},
        paper_stats={"delta": 0.92, "alpha": 3.02, "beta": 12812.06,
                     "capellini_gflops": 8.67, "syncfree_gflops": 1.08},
        description="DC circuit analysis (Table 6 case study)",
    ),
    "lp1": NamedMatrixSpec(
        paper_name="lp1",
        domain="lp",
        n_rows=4096,
        params={"avg_nnz_per_row": 2.4, "basis_fraction": 0.01,
                "chain_prob": 0.08},
        paper_stats={"delta": 1.18, "max_speedup_avg": 34.77},
        description="linear program basis factor — the granularity extreme "
        "(Figure 5's peak; Table 5's maximum SyncFree speedup on all three "
        "platforms)",
    ),
    "neos": NamedMatrixSpec(
        paper_name="neos",
        domain="lp",
        n_rows=4096,
        params={"avg_nnz_per_row": 3.2, "basis_fraction": 0.03,
                "chain_prob": 0.2},
        paper_stats={"note_pascal_max_cusparse_speedup": 23.46},
        description="LP (Pascal's maximum cuSPARSE speedup matrix, Table 5)",
    ),
    "atmosmodd": NamedMatrixSpec(
        paper_name="atmosmodd",
        domain="stencil",
        n_rows=4096,
        params={},
        paper_stats={"note_volta_max_cusparse_speedup": 29.83},
        description="atmospheric model stencil (Volta's maximum cuSPARSE "
        "speedup matrix, Table 5)",
    ),
}


def named_matrix(
    name: str, *, seed: int = 0, scale: float = 1.0
) -> tuple[CSRMatrix, NamedMatrixSpec]:
    """Build the stand-in for a paper matrix.

    ``scale`` multiplies the default row count (e.g. ``scale=0.25`` for
    fast tests).
    """
    try:
        spec = NAMED_MATRICES[name]
    except KeyError:
        raise DatasetError(
            f"unknown named matrix {name!r}; available: "
            f"{', '.join(sorted(NAMED_MATRICES))}"
        ) from None
    return spec.build(seed=seed, scale=scale), spec
