"""Elementary structural generators (chains, bands, stencils, random).

These are the building blocks and edge cases: the fully sequential chain
(zero parallelism — one component per level), the diagonal matrix (full
parallelism), FEM-like bands (dense rows, deep levels — SyncFree's home
turf), regular grid stencils (atmosmodd-like wavefront levels) and
uniform random lower triangles.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import finalize_pattern, require, rng_from_seed
from repro.sparse.csr import CSRMatrix

__all__ = [
    "chain",
    "diagonal",
    "banded",
    "random_lower",
    "stencil2d",
]


def diagonal(n_rows: int, seed: int | None = 0) -> CSRMatrix:
    """Unit diagonal matrix: every component independent (one level)."""
    require(n_rows > 0, "n_rows must be positive")
    rng = rng_from_seed(seed)
    empty = np.empty(0, dtype=np.int64)
    return finalize_pattern(n_rows, empty, empty, rng)


def chain(n_rows: int, seed: int | None = 0, *, width: int = 1) -> CSRMatrix:
    """Each row depends on its ``width`` predecessors: n levels, zero
    parallelism — the paper's worst case (Section 1)."""
    require(n_rows > 0, "n_rows must be positive")
    require(width >= 1, "width must be >= 1")
    rng = rng_from_seed(seed)
    rows_list = []
    cols_list = []
    for k in range(1, width + 1):
        r = np.arange(k, n_rows, dtype=np.int64)
        rows_list.append(r)
        cols_list.append(r - k)
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    return finalize_pattern(n_rows, rows, cols, rng)


def banded(
    n_rows: int,
    seed: int | None = 0,
    *,
    bandwidth: int = 24,
    fill: float = 0.9,
) -> CSRMatrix:
    """FEM-style band (cant-like): dense rows, level count ~ n.

    Rows carry ``~fill * bandwidth`` nonzeros in the band below the
    diagonal — high α, tiny β, low parallel granularity: the regime where
    the warp-level SyncFree algorithm shines.
    """
    require(n_rows > 0, "n_rows must be positive")
    require(bandwidth >= 1, "bandwidth must be >= 1")
    require(0.0 < fill <= 1.0, "fill must be in (0, 1]")
    rng = rng_from_seed(seed)
    rows_list = []
    cols_list = []
    # one vectorized pass per band offset; offset 1 always kept so the
    # band is structurally connected (a full-depth dependency chain)
    for k in range(1, bandwidth + 1):
        r = np.arange(k, n_rows, dtype=np.int64)
        if k > 1:
            r = r[rng.random(len(r)) < fill]
        rows_list.append(r)
        cols_list.append(r - k)
    rows = np.concatenate(rows_list) if rows_list else np.empty(0, np.int64)
    cols = np.concatenate(cols_list) if cols_list else np.empty(0, np.int64)
    return finalize_pattern(n_rows, rows, cols, rng)


def random_lower(
    n_rows: int,
    seed: int | None = 0,
    *,
    avg_nnz_per_row: float = 4.0,
) -> CSRMatrix:
    """Uniform Erdős–Rényi-style lower triangle.

    Each row draws ``Poisson(avg)`` dependencies uniformly from all
    earlier rows; depth grows like O(avg * log n), giving mid-range
    granularity.
    """
    require(n_rows > 0, "n_rows must be positive")
    require(avg_nnz_per_row >= 0, "avg_nnz_per_row must be >= 0")
    rng = rng_from_seed(seed)
    counts = rng.poisson(avg_nnz_per_row, size=n_rows)
    counts = np.minimum(counts, np.arange(n_rows))  # row i has at most i deps
    rows = np.repeat(np.arange(n_rows, dtype=np.int64), counts)
    # dependency of row i: uniform in [0, i)
    cols = (rng.random(len(rows)) * rows).astype(np.int64)
    return finalize_pattern(n_rows, rows, cols, rng)


def stencil2d(
    n_rows: int,
    seed: int | None = 0,
    *,
    aspect: float = 1.0,
) -> CSRMatrix:
    """5-point-stencil lower triangle on a grid (atmosmodd-like).

    Row-major grid ordering: each cell depends on its west and south
    neighbours, so levels are the grid's anti-diagonals — ``nx + ny``
    levels of width up to ``min(nx, ny)``: α ≈ 3, β ≈ n/(nx+ny).
    The requested ``n_rows`` is rounded down to ``nx * ny``.
    """
    require(n_rows >= 4, "n_rows must be >= 4")
    require(aspect > 0, "aspect must be positive")
    rng = rng_from_seed(seed)
    nx = max(2, int(round(np.sqrt(n_rows * aspect))))
    ny = max(2, n_rows // nx)
    n = nx * ny

    idx = np.arange(n, dtype=np.int64)
    ix = idx % nx
    iy = idx // nx
    west_ok = ix > 0
    south_ok = iy > 0
    rows = np.concatenate([idx[west_ok], idx[south_ok]])
    cols = np.concatenate([idx[west_ok] - 1, idx[south_ok] - nx])
    return finalize_pattern(n, rows, cols, rng)
