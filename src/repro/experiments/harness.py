"""Shared experiment infrastructure.

Two measurement paths (DESIGN.md Section 6):

* :func:`sweep_estimates` — analytic-tier estimates of every algorithm
  over a suite and a set of platforms, returned as dense arrays keyed by
  (matrix, algorithm, platform).  Used by the 245-matrix experiments.
* :func:`run_case_study` — cycle-simulator measurements of the named
  stand-in matrices (Table 1/6, Figure 8, the ablation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.datasets.named import named_matrix
from repro.datasets.suite import SuiteEntry
from repro.errors import ExperimentError
from repro.gpu.device import SIM_SMALL, DeviceSpec
from repro.perfmodel.analytic import AnalyticModel, EstimateResult
from repro.solvers.base import SolveResult, SpTRSVSolver, sptrsv_flops
from repro.sparse.triangular import lower_triangular_system

__all__ = [
    "ExperimentResult",
    "SweepData",
    "sweep_estimates",
    "CaseStudyMeasurement",
    "run_case_study",
]


@dataclass(frozen=True)
class ExperimentResult:
    """Rendered outcome of one experiment."""

    experiment_id: str
    title: str
    text: str
    data: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.text

    def to_json_dict(self) -> dict[str, Any]:
        """JSON-safe view (numpy arrays become lists, objects summarize
        to their repr) — what the CLI's ``--json`` flag writes, for CI
        tracking of the regenerated artifacts."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "text": self.text,
            "data": _jsonify(self.data),
        }


def _jsonify(value: Any, depth: int = 0) -> Any:
    """Best-effort JSON conversion; non-serializable leaves become reprs."""
    if depth > 6:
        return repr(value)
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value if np.isfinite(value) else repr(value)
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return _jsonify(float(value), depth + 1)
    if isinstance(value, np.ndarray):
        return _jsonify(value.tolist(), depth + 1)
    if isinstance(value, dict):
        return {str(k): _jsonify(v, depth + 1) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v, depth + 1) for v in value]
    return repr(value)


@dataclass(frozen=True)
class SweepData:
    """Dense analytic estimates over a suite.

    ``estimate(name, algo, platform)`` addresses one cell; per-axis
    vectors come from the index arrays.
    """

    names: list[str]
    domains: list[str]
    granularity: np.ndarray
    alpha: np.ndarray  # avg nnz per row
    beta: np.ndarray   # avg components per level
    algorithms: list[str]
    platforms: list[str]
    #: shape (matrix, algorithm, platform)
    gflops: np.ndarray
    exec_ms: np.ndarray
    bandwidth: np.ndarray
    instructions: np.ndarray
    stall: np.ndarray
    preprocess_ms: np.ndarray

    def axis(self, algorithm: str, platform: str, metric: str) -> np.ndarray:
        """Per-matrix vector of one metric for (algorithm, platform)."""
        a = self.algorithms.index(algorithm)
        p = self.platforms.index(platform)
        return getattr(self, metric)[:, a, p]


def sweep_estimates(
    suite: Sequence[SuiteEntry],
    platforms: dict[str, DeviceSpec],
    *,
    algorithms: Sequence[str] = ("Capellini", "SyncFree", "cuSPARSE"),
    model: AnalyticModel | None = None,
) -> SweepData:
    """Analytic estimates for every (matrix, algorithm, platform)."""
    if not suite:
        raise ExperimentError("empty suite")
    model = model or AnalyticModel()
    algorithms = list(algorithms)
    platform_names = list(platforms)
    shape = (len(suite), len(algorithms), len(platform_names))
    arrays = {
        key: np.zeros(shape)
        for key in (
            "gflops", "exec_ms", "bandwidth", "instructions", "stall",
            "preprocess_ms",
        )
    }
    for mi, entry in enumerate(suite):
        for ai, algo in enumerate(algorithms):
            for pi, pname in enumerate(platform_names):
                est: EstimateResult = model.estimate(
                    entry.features, algo, platforms[pname]
                )
                arrays["gflops"][mi, ai, pi] = est.gflops
                arrays["exec_ms"][mi, ai, pi] = est.exec_ms
                arrays["bandwidth"][mi, ai, pi] = est.bandwidth_gbps
                arrays["instructions"][mi, ai, pi] = est.instructions
                arrays["stall"][mi, ai, pi] = est.stall_fraction
                arrays["preprocess_ms"][mi, ai, pi] = est.preprocess_ms
    return SweepData(
        names=[e.name for e in suite],
        domains=[e.domain for e in suite],
        granularity=np.array([e.features.granularity for e in suite]),
        alpha=np.array([e.features.avg_nnz_per_row for e in suite]),
        beta=np.array([e.features.avg_rows_per_level for e in suite]),
        algorithms=algorithms,
        platforms=platform_names,
        **arrays,
    )


@dataclass(frozen=True)
class CaseStudyMeasurement:
    """Cycle-simulator measurement of one solver on one named matrix."""

    matrix_name: str
    solver_name: str
    result: SolveResult
    gflops: float
    bandwidth_gbps: float
    instructions: int
    stall_fraction: float
    correct: bool


def run_case_study(
    matrix_names: Sequence[str],
    solvers: Sequence[SpTRSVSolver],
    *,
    device: DeviceSpec = SIM_SMALL,
    scale: float = 0.5,
    seed: int = 0,
) -> list[CaseStudyMeasurement]:
    """Run solvers on named stand-ins under the cycle simulator.

    Every solve is verified against the manufactured exact solution; a
    wrong solve is reported (``correct=False``) rather than raised so a
    bench never silently records a time for a wrong answer.
    """
    out: list[CaseStudyMeasurement] = []
    for name in matrix_names:
        L, _spec = named_matrix(name, seed=seed, scale=scale)
        system = lower_triangular_system(L)
        for solver in solvers:
            res = solver.solve(system.L, system.b, device=device)
            correct = bool(
                np.allclose(res.x, system.x_true, rtol=1e-9, atol=1e-12)
            )
            stats = res.stats
            out.append(
                CaseStudyMeasurement(
                    matrix_name=name,
                    solver_name=res.solver_name,
                    result=res,
                    gflops=sptrsv_flops(L) / (res.exec_ms * 1e6),
                    bandwidth_gbps=res.bandwidth_gbps(),
                    instructions=stats.total_instructions if stats else 0,
                    stall_fraction=stats.stall_fraction if stats else 0.0,
                    correct=correct,
                )
            )
    return out
