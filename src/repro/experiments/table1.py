"""Table 1 — preprocessing and execution time of the SpTRSV algorithms.

Paper: Level-Set preprocessing dominates everything (310 ms on
nlpkkt160 vs 28 ms of execution); cuSPARSE's analysis is an order of
magnitude cheaper; SyncFree preprocessing is cheapest; Capellini (not in
the paper's Table 1, included here as the "none" row) has no
preprocessing at all.

Preprocessing columns report the *modeled* milliseconds on the paper's
Pascal-scale platform (see ``repro.perfmodel.calibration`` for the
anchors); execution columns report cycle-simulator time on the reduced
``SIM_SMALL`` device, so only ratios — not absolute values — are
comparable to the paper.
"""

from __future__ import annotations

from repro.experiments.harness import ExperimentResult, run_case_study
from repro.experiments.report import render_table
from repro.gpu.device import SIM_SMALL, DeviceSpec
from repro.solvers import (
    CuSparseProxySolver,
    LevelSetSolver,
    SyncFreeSolver,
    WritingFirstCapelliniSolver,
)

__all__ = ["run", "MATRICES"]

#: Table 1's case-study matrices.
MATRICES = ("nlpkkt160", "wiki-Talk", "cant")


def run(
    *,
    device: DeviceSpec = SIM_SMALL,
    scale: float = 0.5,
    seed: int = 0,
) -> ExperimentResult:
    """Regenerate Table 1 on the named stand-ins."""
    solvers = [
        LevelSetSolver(),
        CuSparseProxySolver(),
        SyncFreeSolver(),
        WritingFirstCapelliniSolver(),
    ]
    measurements = run_case_study(
        MATRICES, solvers, device=device, scale=scale, seed=seed
    )
    by_key = {(m.matrix_name, m.solver_name): m for m in measurements}

    rows = []
    for solver in solvers:
        prep_row = [solver.name, "Preprocessing (modeled ms)"]
        exec_row = ["", "Execution (sim ms)"]
        for name in MATRICES:
            m = by_key[(name, solver.name)]
            prep_row.append(m.result.preprocess.modeled_ms)
            exec_row.append(m.result.exec_ms)
        rows.append(prep_row)
        rows.append(exec_row)

    text = render_table(
        ["Algorithm", "Time"] + list(MATRICES),
        rows,
        title="Table 1 — preprocessing vs execution time "
        f"(stand-ins at scale={scale}, device={device.name})",
    )
    all_correct = all(m.correct for m in measurements)
    text += f"\n\nall solves verified correct: {all_correct}"
    return ExperimentResult(
        experiment_id="table1",
        title="Preprocessing and execution time of SpTRSV algorithms",
        text=text,
        data={
            "measurements": measurements,
            "all_correct": all_correct,
        },
    )
