"""Plain-text rendering of experiment tables and figure series.

The paper's figures are scatter/line plots; in a terminal-first
reproduction we render each figure as the table of its plotted series
(bin centers and per-series values), which is also what EXPERIMENTS.md
records.  An optional sparkline gives the shape at a glance.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["render_table", "render_series", "sparkline"]

_BLOCKS = "▁▂▃▄▅▆▇█"


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Fixed-width ASCII table."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(
            " | ".join(cell.rjust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """Unicode sparkline of a series (NaNs render as spaces)."""
    arr = np.asarray(list(values), dtype=np.float64)
    finite = arr[np.isfinite(arr)]
    if finite.size == 0:
        return " " * len(arr)
    lo, hi = float(finite.min()), float(finite.max())
    span = hi - lo if hi > lo else 1.0
    chars = []
    for v in arr:
        if not np.isfinite(v):
            chars.append(" ")
        else:
            k = int((v - lo) / span * (len(_BLOCKS) - 1))
            chars.append(_BLOCKS[k])
    return "".join(chars)


def render_series(
    title: str,
    x: Sequence[float],
    series: dict[str, Sequence[float]],
    *,
    x_label: str = "granularity",
) -> str:
    """Render a figure as its per-bin table plus sparklines."""
    headers = [x_label] + list(series)
    rows = []
    for i, xv in enumerate(x):
        rows.append([xv] + [series[name][i] for name in series])
    table = render_table(headers, rows, title=title)
    shapes = "\n".join(
        f"  {name:>20s}  {sparkline(vals)}" for name, vals in series.items()
    )
    return f"{table}\n\nshape:\n{shapes}"


def _fmt(cell: object) -> str:
    if isinstance(cell, float) or isinstance(cell, np.floating):
        if not np.isfinite(cell):
            return "-"
        if cell != 0 and (abs(cell) >= 1e5 or abs(cell) < 1e-3):
            return f"{cell:.3g}"
        return f"{cell:.3f}".rstrip("0").rstrip(".")
    return str(cell)
