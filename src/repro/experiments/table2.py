"""Table 2 — qualitative summary of the SpTRSV algorithms.

Generated from the solver classes themselves (the attributes double as
the taxonomy), so the table can never drift from the implementations.
"""

from __future__ import annotations

from repro.experiments.harness import ExperimentResult
from repro.experiments.report import render_table
from repro.solvers import (
    CuSparseProxySolver,
    LevelSetSolver,
    SyncFreeSolver,
    WritingFirstCapelliniSolver,
)

__all__ = ["run"]


def run() -> ExperimentResult:
    """Regenerate Table 2 from solver metadata."""
    solvers = [
        LevelSetSolver(),
        SyncFreeSolver(),
        CuSparseProxySolver(),
        WritingFirstCapelliniSolver(),
    ]
    rows = []
    for s in solvers:
        rows.append(
            [
                s.name,
                s.preprocessing_overhead,
                s.storage_format,
                "yes" if s.requires_synchronization else
                ("unknown" if s.processing_granularity == "unknown" else "no"),
                s.processing_granularity,
            ]
        )
    text = render_table(
        [
            "Algorithm",
            "Preprocessing overhead",
            "Storage format",
            "Synchronization required",
            "Processing granularity",
        ],
        rows,
        title="Table 2 — summary of SpTRSV algorithms",
    )
    return ExperimentResult(
        experiment_id="table2",
        title="Summary for different SpTRSV algorithms",
        text=text,
        data={"rows": rows},
    )
