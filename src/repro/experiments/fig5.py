"""Figure 5 — Capellini's speedup over SyncFree vs granularity.

Paper: the speedup grows with granularity, peaking at 34.77x (averaged
over the platforms) for the LP matrix ``lp1`` at granularity 1.18.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.suite import SuiteEntry, cached_evaluation_suite
from repro.experiments.harness import ExperimentResult, sweep_estimates
from repro.experiments.report import render_series
from repro.gpu.device import PLATFORMS
from repro.metrics.aggregate import bin_by_granularity

__all__ = ["run"]


def run(
    *,
    suite: list[SuiteEntry] | None = None,
    n_matrices: int = 36,
    seed: int = 2020,
    n_bins: int = 10,
) -> ExperimentResult:
    """Regenerate Figure 5's speedup-vs-granularity plot."""
    if suite is None:
        suite = list(cached_evaluation_suite(n_matrices, seed=seed))
    data = sweep_estimates(
        suite, dict(PLATFORMS), algorithms=("SyncFree", "Capellini")
    )
    # platform-averaged speedup per matrix (the paper's "average" series)
    speedups = np.zeros(len(suite))
    for p in data.platforms:
        speedups += data.axis("SyncFree", p, "exec_ms") / data.axis(
            "Capellini", p, "exec_ms"
        )
    speedups /= len(data.platforms)

    lo = float(min(data.granularity.min(), 0.7))
    hi = float(max(data.granularity.max(), 1.2))
    binned = bin_by_granularity(data.granularity, speedups, lo=lo, hi=hi,
                                n_bins=n_bins)
    top = int(np.argmax(speedups))
    finite = binned.mean[np.isfinite(binned.mean)]
    increasing = bool(len(finite) >= 2 and finite[-1] > finite[0])

    text = render_series(
        "Figure 5 — Capellini speedup over SyncFree vs granularity "
        "(platform average)",
        [round(float(c), 3) for c in binned.bin_centers],
        {"speedup": [round(float(v), 2) for v in binned.mean]},
    )
    text += (
        f"\n\nspeedup grows with granularity: {increasing}; "
        f"peak {speedups[top]:.2f}x on {data.names[top]} "
        f"(granularity {data.granularity[top]:.2f}) — "
        "paper: 34.77x on lp1 at granularity 1.18"
    )
    return ExperimentResult(
        experiment_id="fig5",
        title="Speedup over SyncFree vs parallel granularity",
        text=text,
        data={
            "granularity": data.granularity,
            "speedups": speedups,
            "bin_centers": binned.bin_centers,
            "bin_mean": binned.mean,
            "peak_name": data.names[top],
            "peak_speedup": float(speedups[top]),
            "increasing": increasing,
        },
    )
