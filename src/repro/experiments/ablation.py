"""Section 4.3 ablation — Writing-First vs Two-Phase Capellini.

Paper: the Writing-First control flow is 28.9x faster than Two-Phase,
improves bandwidth utilization 4.57x, and executes 56.16% fewer
instructions.  The mechanism is head-of-line blocking: Two-Phase's
phase-1 busy-waits stall whole warps and its phase-2 entry waits for the
slowest lane, while Writing-First lanes poll productively.

The reproduction targets the *direction and rough magnitude*: Writing-
First must be severalfold faster with clearly fewer executed
instructions and higher achieved bandwidth on the high-granularity case
matrices.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.harness import ExperimentResult, run_case_study
from repro.experiments.report import render_table
from repro.gpu.device import SIM_SMALL, DeviceSpec
from repro.solvers import TwoPhaseCapelliniSolver, WritingFirstCapelliniSolver

__all__ = ["run", "MATRICES"]

MATRICES = ("rajat29", "bayer01", "circuit5M_dc")


def run(
    *,
    device: DeviceSpec = SIM_SMALL,
    scale: float = 0.5,
    seed: int = 0,
) -> ExperimentResult:
    """Compare Algorithm 5 against Algorithm 4 on the case studies."""
    measurements = run_case_study(
        MATRICES,
        [TwoPhaseCapelliniSolver(), WritingFirstCapelliniSolver()],
        device=device,
        scale=scale,
        seed=seed,
    )
    by_key = {(m.matrix_name, m.solver_name): m for m in measurements}

    rows = []
    perf_ratios = []
    bw_ratios = []
    instr_savings = []
    for name in MATRICES:
        two = by_key[(name, "Capellini-TwoPhase")]
        wf = by_key[(name, "Capellini")]
        perf = two.result.exec_ms / wf.result.exec_ms
        bw = wf.bandwidth_gbps / max(two.bandwidth_gbps, 1e-12)
        instr = 100 * (1 - wf.instructions / max(two.instructions, 1))
        perf_ratios.append(perf)
        bw_ratios.append(bw)
        instr_savings.append(instr)
        rows.append([name, round(perf, 2), round(bw, 2), round(instr, 1)])

    rows.append(
        [
            "mean",
            round(float(np.mean(perf_ratios)), 2),
            round(float(np.mean(bw_ratios)), 2),
            round(float(np.mean(instr_savings)), 1),
        ]
    )
    text = render_table(
        ["Matrix", "Perf ratio (WF/TP)", "Bandwidth ratio",
         "Instr. saved %"],
        rows,
        title="Section 4.3 ablation — Writing-First over Two-Phase "
        f"({device.name}, scale={scale})",
    )
    text += (
        "\n\npaper: 28.9x performance, 4.57x bandwidth, 56.16% fewer "
        "instructions"
    )
    return ExperimentResult(
        experiment_id="ablation-writing-first",
        title="Writing-First vs Two-Phase CapelliniSpTRSV",
        text=text,
        data={
            "perf_ratios": perf_ratios,
            "bandwidth_ratios": bw_ratios,
            "instruction_savings_pct": instr_savings,
            "measurements": measurements,
        },
    )
