"""Figure 2 — the paper's worked example, executed for real.

Figure 2 walks the 8x8 matrix of Figure 1 through the three algorithm
families on a toy GPU ("the GPU device can launch two warps at the same
time, and each warp can support three threads") and argues Capellini
finishes in the fewest cycles because it keeps every lane busy.

This experiment runs exactly that configuration on the cycle simulator
(``SIM_TINY``: 1 SM, 2 resident warps, warp size 3) with the Figure 1
matrix, and reports measured cycles, lane utilization and instruction
counts per algorithm.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DeadlockError
from repro.experiments.harness import ExperimentResult
from repro.experiments.report import render_table
from repro.gpu.device import SIM_TINY, DeviceSpec
from repro.solvers import (
    LevelSetSolver,
    NaiveThreadSolver,
    SyncFreeSolver,
    WritingFirstCapelliniSolver,
)
from repro.sparse.coo import COOMatrix
from repro.sparse.convert import coo_to_csr
from repro.sparse.csr import CSRMatrix
from repro.sparse.triangular import lower_triangular_system

__all__ = ["run", "figure1_matrix"]


def figure1_matrix() -> CSRMatrix:
    """The paper's Figure 1 example (see also tests/conftest.py):
    8 rows, four level-sets {0,1}, {2,4}, {3,5}, {6,7}, off-diagonal
    pattern matching the elements Figure 2's walkthrough names."""
    entries = {
        (0, 0): 1.0,
        (1, 1): 1.0,
        (2, 1): 0.5, (2, 2): 1.0,
        (3, 1): 0.25, (3, 2): 0.25, (3, 3): 1.0,
        (4, 0): 0.5, (4, 1): 0.25, (4, 4): 1.0,
        (5, 2): 0.5, (5, 5): 1.0,
        (6, 3): 0.5, (6, 6): 1.0,
        (7, 5): 0.5, (7, 7): 1.0,
    }
    rows = np.array([r for r, _ in entries], dtype=np.int64)
    cols = np.array([c for _, c in entries], dtype=np.int64)
    vals = np.array(list(entries.values()))
    return coo_to_csr(COOMatrix(8, 8, rows, cols, vals))


def run(*, device: DeviceSpec = SIM_TINY) -> ExperimentResult:
    """Execute the Figure 2 walkthrough on the toy device."""
    system = lower_triangular_system(figure1_matrix())
    solvers = [LevelSetSolver(), SyncFreeSolver(),
               WritingFirstCapelliniSolver()]
    rows = []
    cycles = {}
    for solver in solvers:
        r = solver.solve(system.L, system.b, device=device)
        assert np.allclose(r.x, system.x_true, rtol=1e-9)
        cycles[r.solver_name] = r.stats.cycles
        rows.append(
            [
                r.solver_name,
                r.stats.cycles,
                r.stats.total_instructions,
                f"{r.stats.lane_utilization:.1%}",
            ]
        )
    # the naive kernel deadlocks here (row 2 depends on row 1 in-warp)
    naive_outcome = "completed?!"
    try:
        NaiveThreadSolver().solve(system.L, system.b, device=device)
    except DeadlockError:
        naive_outcome = "DeadlockError (as Section 3.3 predicts)"

    text = render_table(
        ["Algorithm", "Cycles", "Instructions", "Lane utilization"],
        rows,
        title="Figure 2 walkthrough — Figure 1's matrix on the paper's toy "
        f"device ({device.name}: 2 warps x 3 threads)",
    )
    text += f"\n\nnaive thread-level kernel: {naive_outcome}"
    capellini_fastest = cycles["Capellini"] == min(cycles.values())
    text += f"\nCapellini finishes first: {capellini_fastest}"
    return ExperimentResult(
        experiment_id="fig2",
        title="Workflow walkthrough on the paper's toy device",
        text=text,
        data={
            "cycles": cycles,
            "capellini_fastest": capellini_fastest,
            "naive_outcome": naive_outcome,
        },
    )
