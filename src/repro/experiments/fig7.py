"""Figure 7 — DRAM bandwidth utilization.

Paper: on the high-granularity matrices Capellini achieves 56.09 GB/s
average — 5.17x SyncFree's and 5.25x cuSPARSE's.  Bandwidth here is
achieved-traffic-over-time, so the ratios track the speedups (all three
algorithms move nearly the same bytes for the same matrix).

Two measurement paths are reported: the analytic sweep (paper-scale
matrices, Pascal parameters) and the cycle simulator's traffic counters
on the named case studies.
"""

from __future__ import annotations

from repro.datasets.suite import SuiteEntry, cached_evaluation_suite
from repro.experiments.harness import (
    ExperimentResult,
    run_case_study,
    sweep_estimates,
)
from repro.experiments.report import render_table
from repro.gpu.device import PASCAL_GTX1080, SIM_SMALL, DeviceSpec
from repro.solvers import (
    CuSparseProxySolver,
    SyncFreeSolver,
    WritingFirstCapelliniSolver,
)

__all__ = ["run", "ALGORITHMS"]

ALGORITHMS = ("SyncFree", "cuSPARSE", "Capellini")


def run(
    *,
    suite: list[SuiteEntry] | None = None,
    n_matrices: int = 36,
    seed: int = 2020,
    device: DeviceSpec = PASCAL_GTX1080,
    case_device: DeviceSpec = SIM_SMALL,
    case_scale: float = 0.5,
    include_case_study: bool = True,
) -> ExperimentResult:
    """Regenerate Figure 7's bandwidth comparison."""
    if suite is None:
        suite = list(cached_evaluation_suite(n_matrices, seed=seed))
    data = sweep_estimates(suite, {device.name: device}, algorithms=ALGORITHMS)

    rows = []
    means = {}
    for algo in ALGORITHMS:
        bw = data.axis(algo, device.name, "bandwidth")
        means[algo] = float(bw.mean())
        rows.append([algo, means[algo]])
    ratio_sync = means["Capellini"] / means["SyncFree"]
    ratio_cusp = means["Capellini"] / means["cuSPARSE"]
    text = render_table(
        ["Algorithm", "Mean bandwidth (GB/s)"],
        rows,
        title=f"Figure 7 — bandwidth utilization ({len(suite)} matrices, "
        f"{device.name}, analytic)",
    )
    text += (
        f"\n\nCapellini / SyncFree bandwidth ratio: {ratio_sync:.2f}x "
        "(paper: 5.17x); "
        f"Capellini / cuSPARSE: {ratio_cusp:.2f}x (paper: 5.25x)"
    )

    case = []
    if include_case_study:
        case = run_case_study(
            ("rajat29", "bayer01", "circuit5M_dc"),
            [SyncFreeSolver(), CuSparseProxySolver(),
             WritingFirstCapelliniSolver()],
            device=case_device,
            scale=case_scale,
        )
        case_rows = [
            [m.matrix_name, m.solver_name, m.bandwidth_gbps] for m in case
        ]
        text += "\n\n" + render_table(
            ["Matrix", "Algorithm", "Sim bandwidth (GB/s)"],
            case_rows,
            title=f"cycle-simulator traffic counters ({case_device.name})",
        )
    return ExperimentResult(
        experiment_id="fig7",
        title="Bandwidth utilization (read + write)",
        text=text,
        data={
            "means": means,
            "ratio_over_syncfree": ratio_sync,
            "ratio_over_cusparse": ratio_cusp,
            "case_study": case,
        },
    )
