"""Figure 6 — optimal-algorithm distribution over (nnz_row, n_level).

Paper: a scatter of the evaluated matrices in the (average nonzeros per
row, average components per level) plane, colored by the faster
algorithm — Capellini claims the high-β / low-α corner.

We reproduce it as a winner grid: the sweep suite's matrices are bucketed
into a log-log grid over (α, β) and each cell reports which algorithm
wins it (majority vote of the matrices in the cell).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.suite import SuiteEntry, cached_full_sweep_suite
from repro.experiments.harness import ExperimentResult, sweep_estimates
from repro.experiments.report import render_table
from repro.gpu.device import PASCAL_GTX1080, DeviceSpec

__all__ = ["run"]


def run(
    *,
    suite: list[SuiteEntry] | None = None,
    n_matrices: int = 44,
    device: DeviceSpec = PASCAL_GTX1080,
    seed: int = 873,
    alpha_bins: int = 5,
    beta_bins: int = 5,
) -> ExperimentResult:
    """Regenerate Figure 6's winner map."""
    if suite is None:
        suite = list(cached_full_sweep_suite(n_matrices, seed=seed))
    data = sweep_estimates(
        suite, {device.name: device}, algorithms=("SyncFree", "Capellini")
    )
    cap = data.axis("Capellini", device.name, "exec_ms")
    syn = data.axis("SyncFree", device.name, "exec_ms")
    cap_wins = cap < syn

    log_a = np.log10(np.maximum(data.alpha, 1.001))
    log_b = np.log10(np.maximum(data.beta, 1.001))
    a_edges = np.linspace(log_a.min(), log_a.max() + 1e-9, alpha_bins + 1)
    b_edges = np.linspace(log_b.min(), log_b.max() + 1e-9, beta_bins + 1)
    ai = np.clip(np.digitize(log_a, a_edges) - 1, 0, alpha_bins - 1)
    bi = np.clip(np.digitize(log_b, b_edges) - 1, 0, beta_bins - 1)

    grid_rows = []
    grid = {}
    for bb in reversed(range(beta_bins)):  # high beta at the top
        row_label = f"beta~1e{(b_edges[bb] + b_edges[bb + 1]) / 2:.1f}"
        row = [row_label]
        for aa in range(alpha_bins):
            mask = (ai == aa) & (bi == bb)
            if not mask.any():
                cell = "."
            else:
                wins = int(np.count_nonzero(cap_wins[mask]))
                cell = "Capellini" if wins * 2 >= mask.sum() else "SyncFree"
            grid[(aa, bb)] = cell
            row.append(cell)
        grid_rows.append(row)

    headers = ["beta \\ alpha"] + [
        f"~{10 ** ((a_edges[a] + a_edges[a + 1]) / 2):.1f}"
        for a in range(alpha_bins)
    ]
    text = render_table(
        headers, grid_rows,
        title=f"Figure 6 — optimal algorithm by (alpha, beta), {device.name}",
    )
    # quadrant check: high-beta/low-alpha should belong to Capellini,
    # low-beta/high-alpha to SyncFree (when populated)
    hi_b_lo_a = grid.get((0, beta_bins - 1), ".")
    lo_b_hi_a = grid.get((alpha_bins - 1, 0), ".")
    text += (
        f"\n\nhigh-beta/low-alpha corner: {hi_b_lo_a} (paper: Capellini); "
        f"low-beta/high-alpha corner: {lo_b_hi_a} (paper: SyncFree)"
    )
    return ExperimentResult(
        experiment_id="fig6",
        title="Optimal algorithm distribution",
        text=text,
        data={
            "grid": grid,
            "capellini_win_fraction": float(np.mean(cap_wins)),
            "corner_high_beta_low_alpha": hi_b_lo_a,
            "corner_low_beta_high_alpha": lo_b_hi_a,
        },
    )
