"""Experiment modules: one per table/figure of the paper's evaluation.

Every module exposes ``run(...) -> ExperimentResult``; the result carries
the structured rows plus an ASCII rendering, and records which paper
table/figure it regenerates.  The per-experiment index lives in
DESIGN.md; measured-versus-paper numbers are recorded in EXPERIMENTS.md.

===========================  ===========================================
Module                       Regenerates
===========================  ===========================================
``experiments.table1``       Table 1 — preprocessing vs execution time
``experiments.table2``       Table 2 — algorithm property summary
``experiments.fig2``         Figure 2 — toy-device workflow walkthrough
``experiments.fig3``         Figure 3 — SyncFree GFLOPS vs granularity
``experiments.table4``       Table 4 — mean GFLOPS per platform
``experiments.fig4``         Figure 4 — GFLOPS vs granularity, 3 platforms
``experiments.fig5``         Figure 5 — speedup over SyncFree vs granularity
``experiments.table5``       Table 5 — avg/max speedups per platform
``experiments.fig6``         Figure 6 — optimal-algorithm distribution
``experiments.fig7``         Figure 7 — bandwidth utilization
``experiments.fig8``         Figure 8 — instructions and stall percentage
``experiments.table6``       Table 6 — per-matrix detailed indicators
``experiments.ablation``     Section 4.3 — Writing-First vs Two-Phase
``experiments.amortization`` Table 1's narrative — preprocessing break-even
===========================  ===========================================
"""

from repro.experiments.harness import (
    CaseStudyMeasurement,
    ExperimentResult,
    run_case_study,
    sweep_estimates,
)
from repro.experiments.report import render_series, render_table

__all__ = [
    "CaseStudyMeasurement",
    "ExperimentResult",
    "run_case_study",
    "sweep_estimates",
    "render_series",
    "render_table",
]
