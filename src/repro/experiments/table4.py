"""Table 4 — mean GFLOPS per platform and Capellini's win percentage.

Paper (245 high-granularity matrices): Capellini 6.84 GFLOPS average vs
SyncFree 1.78 and cuSPARSE 1.92; Capellini is the best algorithm on
87.28% of the matrices.  The reproduction target is the *ordering* and
the rough factors (Capellini several-fold ahead on every platform; win
percentage in the 80-95% band).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.suite import SuiteEntry, cached_evaluation_suite
from repro.experiments.harness import ExperimentResult, sweep_estimates
from repro.experiments.report import render_table
from repro.gpu.device import PLATFORMS
from repro.metrics.aggregate import percent_where_best

__all__ = ["run", "ALGORITHMS"]

ALGORITHMS = ("SyncFree", "cuSPARSE", "Capellini")


def run(
    *,
    suite: list[SuiteEntry] | None = None,
    n_matrices: int = 36,
    seed: int = 2020,
) -> ExperimentResult:
    """Regenerate Table 4 over the high-granularity suite."""
    if suite is None:
        suite = list(cached_evaluation_suite(n_matrices, seed=seed))
    data = sweep_estimates(suite, dict(PLATFORMS), algorithms=ALGORITHMS)

    platform_names = data.platforms
    rows = []
    means: dict[str, dict[str, float]] = {}
    for algo in ALGORITHMS:
        row = [algo]
        means[algo] = {}
        for p in platform_names:
            mean = float(data.axis(algo, p, "gflops").mean())
            means[algo][p] = mean
            row.append(mean)
        row.append(float(np.mean([means[algo][p] for p in platform_names])))
        rows.append(row)

    pct_row = ["% Capellini optimal"]
    pcts = []
    for p in platform_names:
        cap = data.axis("Capellini", p, "gflops")
        others = [data.axis(a, p, "gflops") for a in ALGORITHMS if a != "Capellini"]
        pct = percent_where_best(cap, others)
        pcts.append(pct)
        pct_row.append(pct)
    pct_row.append(float(np.mean(pcts)))
    rows.append(pct_row)

    text = render_table(
        ["Algorithm"] + platform_names + ["Average"],
        rows,
        title=f"Table 4 — GFLOPS by platform ({len(suite)} matrices, "
        "granularity > 0.7)",
    )
    text += (
        "\n\npaper: SyncFree 1.78 / cuSPARSE 1.92 / Capellini 6.84 GFLOPS "
        "average; Capellini optimal on 87.28% of matrices"
    )
    return ExperimentResult(
        experiment_id="table4",
        title="GFLOPS of SpTRSV algorithms and Capellini win percentage",
        text=text,
        data={"means": means, "percent_optimal": dict(zip(platform_names, pcts)),
              "sweep": data},
    )
