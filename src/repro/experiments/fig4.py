"""Figure 4 — GFLOPS vs granularity (0.7-1.2) per platform, 3 algorithms.

Paper: on every platform Capellini's curve sits well above SyncFree and
cuSPARSE across the whole high-granularity range, with the gap widening
toward higher granularity.
"""

from __future__ import annotations

from repro.datasets.suite import SuiteEntry, cached_evaluation_suite
from repro.experiments.harness import ExperimentResult, sweep_estimates
from repro.experiments.report import render_series
from repro.gpu.device import PLATFORMS
from repro.metrics.aggregate import bin_by_granularity

__all__ = ["run", "ALGORITHMS"]

ALGORITHMS = ("SyncFree", "cuSPARSE", "Capellini")


def run(
    *,
    suite: list[SuiteEntry] | None = None,
    n_matrices: int = 36,
    seed: int = 2020,
    n_bins: int = 10,
) -> ExperimentResult:
    """Regenerate Figure 4's three per-platform panels."""
    if suite is None:
        suite = list(cached_evaluation_suite(n_matrices, seed=seed))
    data = sweep_estimates(suite, dict(PLATFORMS), algorithms=ALGORITHMS)

    lo = float(min(data.granularity.min(), 0.7))
    hi = float(max(data.granularity.max(), 1.2))
    panels = []
    panel_data: dict[str, dict[str, list[float]]] = {}
    for p in data.platforms:
        series = {}
        centers = None
        for algo in ALGORITHMS:
            binned = bin_by_granularity(
                data.granularity, data.axis(algo, p, "gflops"),
                lo=lo, hi=hi, n_bins=n_bins,
            )
            centers = [round(float(c), 3) for c in binned.bin_centers]
            series[algo] = [round(float(v), 3) for v in binned.mean]
        panel_data[p] = series
        panels.append(
            render_series(
                f"Figure 4 ({p}) — GFLOPS vs granularity", centers, series
            )
        )
    text = "\n\n".join(panels)
    return ExperimentResult(
        experiment_id="fig4",
        title="GFLOPS vs parallel granularity on three platforms",
        text=text,
        data={"panels": panel_data, "sweep": data},
    )
