"""Figure 3 — performance trend of warp-level SyncFree vs granularity.

Paper: SyncFree GFLOPS rises with granularity up to a peak and then
declines — the under-utilization regime begins around 0.7 and motivates
the whole paper.  We reproduce the curve with the analytic tier over the
granularity-spanning sweep suite.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.suite import SuiteEntry, cached_full_sweep_suite
from repro.experiments.harness import ExperimentResult, sweep_estimates
from repro.experiments.report import render_series
from repro.gpu.device import PASCAL_GTX1080, DeviceSpec
from repro.metrics.aggregate import bin_by_granularity

__all__ = ["run"]


def run(
    *,
    suite: list[SuiteEntry] | None = None,
    n_matrices: int = 44,
    device: DeviceSpec = PASCAL_GTX1080,
    seed: int = 873,
) -> ExperimentResult:
    """Regenerate Figure 3's trend curve."""
    if suite is None:
        suite = list(cached_full_sweep_suite(n_matrices, seed=seed))
    data = sweep_estimates(
        suite, {device.name: device}, algorithms=("SyncFree",)
    )
    gflops = data.axis("SyncFree", device.name, "gflops")
    # granularity of a pure chain is -2; clamp the axis to the plot range
    gran = np.clip(data.granularity, -0.25, 1.25)
    binned = bin_by_granularity(gran, gflops, lo=-0.25, hi=1.25, n_bins=12)

    peak_bin = int(np.nanargmax(binned.mean))
    peak_center = float(binned.bin_centers[peak_bin])
    declines_after_peak = bool(
        np.nanmean(binned.mean[peak_bin + 1:]) < binned.mean[peak_bin]
    )

    text = render_series(
        f"Figure 3 — SyncFree GFLOPS vs parallel granularity ({device.name})",
        [round(float(c), 3) for c in binned.bin_centers],
        {"SyncFree GFLOPS": [round(float(v), 3) for v in binned.mean]},
    )
    text += (
        f"\n\npeak at granularity ~ {peak_center:.2f}; "
        f"declines after peak: {declines_after_peak} "
        "(paper: rises, peaks, then declines past ~0.7)"
    )
    return ExperimentResult(
        experiment_id="fig3",
        title="Performance trend of warp-level synchronization-free SpTRSV",
        text=text,
        data={
            "bin_centers": binned.bin_centers,
            "mean_gflops": binned.mean,
            "counts": binned.count,
            "peak_center": peak_center,
            "declines_after_peak": declines_after_peak,
        },
    )
