"""Preprocessing amortization — Table 1's narrative, quantified.

The paper's core usability argument (Sections 1-2): level-set
preprocessing can cost "dozens of times" one execution, so algorithms
needing it only pay off after many solves of the same matrix — while
CapelliniSpTRSV has zero setup and wins from the very first solve.

This experiment computes, for each algorithm and case matrix, the
break-even solve count against Capellini:

.. math::

    k^* = \\frac{prep_A - prep_{Cap}}{exec_{Cap} - exec_A}

(the number of repeated solves after which algorithm A's faster/slower
execution has paid back its preprocessing); ``inf`` when A never catches
up (slower execution *and* more preprocessing).
"""

from __future__ import annotations

import math

from repro.experiments.harness import ExperimentResult, run_case_study
from repro.experiments.report import render_table
from repro.gpu.device import SIM_SMALL, DeviceSpec
from repro.solvers import (
    CuSparseProxySolver,
    LevelSetSolver,
    SyncFreeSolver,
    WritingFirstCapelliniSolver,
)

__all__ = ["run", "MATRICES", "break_even_solves"]

MATRICES = ("nlpkkt160", "wiki-Talk", "cant")


def break_even_solves(
    prep_a: float, exec_a: float, prep_cap: float, exec_cap: float
) -> float:
    """Solves after which algorithm A beats Capellini cumulatively.

    Returns 0 when A dominates outright, ``inf`` when it never does.
    """
    extra_prep = prep_a - prep_cap
    per_solve_gain = exec_cap - exec_a
    if per_solve_gain <= 0:
        return 0.0 if extra_prep <= 0 else math.inf
    if extra_prep <= 0:
        return 0.0
    return extra_prep / per_solve_gain


def run(
    *,
    device: DeviceSpec = SIM_SMALL,
    scale: float = 0.5,
    seed: int = 0,
) -> ExperimentResult:
    """Compute the break-even table on the Table 1 case matrices.

    Preprocessing uses the calibrated paper-scale model; execution uses
    the cycle simulator scaled so both are expressed in the same
    (modeled) milliseconds — the *ratios* are the result.
    """
    solvers = [LevelSetSolver(), CuSparseProxySolver(), SyncFreeSolver(),
               WritingFirstCapelliniSolver()]
    measurements = run_case_study(
        MATRICES, solvers, device=device, scale=scale, seed=seed
    )
    by_key = {(m.matrix_name, m.solver_name): m for m in measurements}

    rows = []
    break_evens: dict[tuple[str, str], float] = {}
    for name in MATRICES:
        cap = by_key[(name, "Capellini")].result
        for solver in solvers[:-1]:
            r = by_key[(name, solver.name)].result
            k = break_even_solves(
                r.preprocess.modeled_ms, r.exec_ms,
                cap.preprocess.modeled_ms, cap.exec_ms,
            )
            break_evens[(name, solver.name)] = k
            rows.append(
                [
                    name,
                    solver.name,
                    round(r.preprocess.modeled_ms, 3),
                    round(r.exec_ms, 4),
                    "never" if math.isinf(k) else round(k, 1),
                ]
            )
    text = render_table(
        ["Matrix", "Algorithm", "Preprocess (ms)", "Exec (sim ms)",
         "Break-even solves vs Capellini"],
        rows,
        title="Preprocessing amortization — solves needed to beat "
        f"zero-setup Capellini ({device.name}, scale={scale})",
    )
    never_fraction = sum(
        1 for v in break_evens.values() if math.isinf(v)
    ) / len(break_evens)
    text += (
        f"\n\nalgorithms that never catch up on these matrices: "
        f"{never_fraction:.0%} of (matrix, algorithm) pairs"
    )
    return ExperimentResult(
        experiment_id="amortization",
        title="Preprocessing amortization versus Capellini",
        text=text,
        data={
            "break_evens": break_evens,
            "never_fraction": never_fraction,
            "measurements": measurements,
        },
    )
