"""Table 6 — detailed indicators for three case-study matrices.

Paper: for rajat29 / bayer01 / circuit5M_dc (all high granularity,
α ≈ 3-5, β ≈ 10⁴), Capellini beats cuSPARSE and SyncFree on every
indicator — GFLOPS, bandwidth, executed instructions, and stall
percentage.
"""

from __future__ import annotations

from repro.analysis.features import extract_features
from repro.datasets.named import named_matrix
from repro.experiments.harness import ExperimentResult, run_case_study
from repro.experiments.report import render_table
from repro.gpu.device import SIM_SMALL, DeviceSpec
from repro.solvers import (
    CuSparseProxySolver,
    SyncFreeSolver,
    WritingFirstCapelliniSolver,
)

__all__ = ["run", "MATRICES"]

MATRICES = ("rajat29", "bayer01", "circuit5M_dc")


def run(
    *,
    device: DeviceSpec = SIM_SMALL,
    scale: float = 0.5,
    seed: int = 0,
) -> ExperimentResult:
    """Regenerate Table 6's per-matrix indicator blocks."""
    solvers = [
        CuSparseProxySolver(),
        SyncFreeSolver(),
        WritingFirstCapelliniSolver(),
    ]
    measurements = run_case_study(
        MATRICES, solvers, device=device, scale=scale, seed=seed
    )
    by_key = {(m.matrix_name, m.solver_name): m for m in measurements}

    blocks = []
    winners_ok = True
    for name in MATRICES:
        L, spec = named_matrix(name, seed=seed, scale=scale)
        f = extract_features(L)
        rows = []
        for s in solvers:
            m = by_key[(name, s.name)]
            rows.append(
                [
                    s.name,
                    round(m.gflops, 4),
                    round(m.bandwidth_gbps, 3),
                    m.instructions,
                    round(100 * m.stall_fraction, 2),
                ]
            )
        cap = by_key[(name, "Capellini")]
        others = [by_key[(name, s.name)] for s in solvers[:-1]]
        winners_ok &= all(cap.gflops > o.gflops for o in others)
        title = (
            f"{name} (stand-in: δ={f.granularity:.2f}, "
            f"α={f.avg_nnz_per_row:.2f}, β={f.avg_rows_per_level:.1f}; "
            f"paper: δ={spec.paper_stats.get('delta', float('nan')):.2f}, "
            f"α={spec.paper_stats.get('alpha', float('nan')):.2f}, "
            f"β={spec.paper_stats.get('beta', float('nan')):.1f})"
        )
        blocks.append(
            render_table(
                ["Algorithm", "GFLOPS (sim)", "Bandwidth GB/s",
                 "Instructions", "Stall %"],
                rows,
                title=title,
            )
        )
    text = (
        f"Table 6 — detailed performance indicators ({device.name}, "
        f"scale={scale})\n\n" + "\n\n".join(blocks)
    )
    text += f"\n\nCapellini fastest on every case matrix: {winners_ok}"
    return ExperimentResult(
        experiment_id="table6",
        title="Detailed performance indicators for three matrices",
        text=text,
        data={"measurements": measurements, "capellini_wins_all": winners_ok},
    )
