"""Table 5 — average and maximum speedups per platform.

Paper: Capellini averages 4-5.6x over SyncFree (max 21-47x, always on
``lp1``) and 3.1-7.1x over cuSPARSE per platform.  The reproduction adds
the LP stand-in ``lp1`` to the suite so the argmax row is meaningful.
"""

from __future__ import annotations

from repro.analysis.features import extract_features
from repro.datasets.named import named_matrix
from repro.datasets.suite import SuiteEntry, cached_evaluation_suite
from repro.experiments.harness import ExperimentResult, sweep_estimates
from repro.experiments.report import render_table
from repro.gpu.device import PLATFORMS
from repro.metrics.speedup import speedup_summary

__all__ = ["run"]


def run(
    *,
    suite: list[SuiteEntry] | None = None,
    n_matrices: int = 36,
    seed: int = 2020,
    include_lp1: bool = True,
) -> ExperimentResult:
    """Regenerate Table 5's speedup summaries."""
    if suite is None:
        suite = list(cached_evaluation_suite(n_matrices, seed=seed))
    if include_lp1 and not any(e.name == "lp1" for e in suite):
        L, _ = named_matrix("lp1", seed=seed, scale=40.0)  # paper-scale δ
        suite = list(suite) + [
            SuiteEntry(name="lp1", domain="lp", matrix=L,
                       features=extract_features(L))
        ]
    data = sweep_estimates(
        suite, dict(PLATFORMS),
        algorithms=("SyncFree", "cuSPARSE", "Capellini"),
    )

    rows = []
    summaries = {}
    for baseline in ("SyncFree", "cuSPARSE"):
        avg_row = [f"Average speedup over {baseline}"]
        max_row = [f"Maximum speedup over {baseline}"]
        name_row = ["Matrix name"]
        for p in data.platforms:
            s = speedup_summary(
                data.names,
                data.axis(baseline, p, "exec_ms"),
                data.axis("Capellini", p, "exec_ms"),
            )
            summaries[(baseline, p)] = s
            avg_row.append(round(s.average, 2))
            max_row.append(round(s.maximum, 2))
            name_row.append(s.argmax_name)
        rows.extend([avg_row, max_row, name_row])

    text = render_table(
        ["Metric"] + data.platforms,
        rows,
        title=f"Table 5 — Capellini speedups ({len(suite)} matrices)",
    )
    text += (
        "\n\npaper: avg over SyncFree 5.26/4.08/5.56 (max 21.02/36.48/46.8, "
        "all lp1); avg over cuSPARSE 4.00/3.13/7.09"
    )
    return ExperimentResult(
        experiment_id="table5",
        title="Average and maximum speedups over SyncFree and cuSPARSE",
        text=text,
        data={"summaries": summaries, "sweep": data},
    )
