"""Figure 8 — executed instructions and dependency-stall percentage.

Paper (Pascal): Capellini saves 76.02% of instructions vs SyncFree and
56.02% vs cuSPARSE; its stall percentage is 12.55%, i.e. 25.60% lower
than SyncFree's and 65.40% lower than cuSPARSE's.

Measured with the cycle simulator's instruction/stall counters on the
Table 6 case-study stand-ins — the shape targets are: Capellini executes
the fewest instructions by a wide margin, and the stall ordering is
Capellini < SyncFree < cuSPARSE.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.harness import ExperimentResult, run_case_study
from repro.experiments.report import render_table
from repro.gpu.device import SIM_SMALL, DeviceSpec
from repro.solvers import (
    CuSparseProxySolver,
    SyncFreeSolver,
    WritingFirstCapelliniSolver,
)

__all__ = ["run", "MATRICES", "ALGORITHM_ORDER"]

MATRICES = ("rajat29", "bayer01", "circuit5M_dc")
ALGORITHM_ORDER = ("cuSPARSE", "SyncFree", "Capellini")


def run(
    *,
    device: DeviceSpec = SIM_SMALL,
    scale: float = 0.5,
    seed: int = 0,
) -> ExperimentResult:
    """Regenerate Figure 8's two panels as tables."""
    measurements = run_case_study(
        MATRICES,
        [CuSparseProxySolver(), SyncFreeSolver(),
         WritingFirstCapelliniSolver()],
        device=device,
        scale=scale,
        seed=seed,
    )
    by_key = {(m.matrix_name, m.solver_name): m for m in measurements}

    instr_rows = []
    stall_rows = []
    for algo in ALGORITHM_ORDER:
        instr_rows.append(
            [algo] + [by_key[(n, algo)].instructions for n in MATRICES]
        )
        stall_rows.append(
            [algo]
            + [round(100 * by_key[(n, algo)].stall_fraction, 2)
               for n in MATRICES]
        )

    mean_instr = {
        algo: float(np.mean([by_key[(n, algo)].instructions for n in MATRICES]))
        for algo in ALGORITHM_ORDER
    }
    mean_stall = {
        algo: float(np.mean([by_key[(n, algo)].stall_fraction
                             for n in MATRICES]))
        for algo in ALGORITHM_ORDER
    }
    saved_vs_syncfree = 100 * (1 - mean_instr["Capellini"] / mean_instr["SyncFree"])
    saved_vs_cusparse = 100 * (1 - mean_instr["Capellini"] / mean_instr["cuSPARSE"])
    stall_ordering_ok = (
        mean_stall["Capellini"] < mean_stall["SyncFree"] < mean_stall["cuSPARSE"]
    )

    text = render_table(
        ["Algorithm"] + list(MATRICES),
        instr_rows,
        title=f"Figure 8(a) — executed GPU instructions ({device.name}, "
        f"scale={scale})",
    )
    text += "\n\n" + render_table(
        ["Algorithm"] + list(MATRICES),
        stall_rows,
        title="Figure 8(b) — instruction dependency stalls (%)",
    )
    text += (
        f"\n\nCapellini instruction saving vs SyncFree: "
        f"{saved_vs_syncfree:.1f}% (paper: 76.0%); vs cuSPARSE: "
        f"{saved_vs_cusparse:.1f}% (paper: 56.0%)\n"
        f"stall ordering Capellini < SyncFree < cuSPARSE: {stall_ordering_ok}"
    )
    return ExperimentResult(
        experiment_id="fig8",
        title="GPU instructions executed and instruction stalls",
        text=text,
        data={
            "measurements": measurements,
            "mean_instructions": mean_instr,
            "mean_stall": mean_stall,
            "saved_vs_syncfree_pct": saved_vs_syncfree,
            "saved_vs_cusparse_pct": saved_vs_cusparse,
            "stall_ordering_ok": stall_ordering_ok,
        },
    )
