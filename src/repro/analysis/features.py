"""Matrix feature extraction for the experiment harness.

Bundles every statistic the paper reports about a matrix — size, nnz,
``nnz_row`` (α in Table 6), ``n_level`` (β), the level structure, and the
parallel granularity (δ) — into one record so the sweep experiments
compute the (potentially expensive) level schedule exactly once per
matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.granularity import (
    GranularityParams,
    parallel_granularity_from_stats,
)
from repro.analysis.levels import LevelSchedule, compute_levels
from repro.sparse.csr import CSRMatrix

__all__ = ["MatrixFeatures", "extract_features"]


@dataclass(frozen=True)
class MatrixFeatures:
    """Structural statistics of a lower triangular matrix.

    The Greek letters match Table 6 of the paper:
    δ = :attr:`granularity`, α = :attr:`avg_nnz_per_row`,
    β = :attr:`avg_rows_per_level`.
    """

    n_rows: int
    nnz: int
    avg_nnz_per_row: float
    max_nnz_per_row: int
    n_levels: int
    avg_rows_per_level: float
    max_level_width: int
    granularity: float
    schedule: LevelSchedule
    row_lengths: np.ndarray

    @property
    def critical_path_length(self) -> int:
        """Levels minus one: serialized steps any schedule must pay."""
        return max(self.n_levels - 1, 0)

    def summary(self) -> str:
        """One-line human-readable summary (used by the CLI)."""
        return (
            f"n={self.n_rows} nnz={self.nnz} "
            f"alpha(nnz/row)={self.avg_nnz_per_row:.2f} "
            f"beta(rows/level)={self.avg_rows_per_level:.2f} "
            f"levels={self.n_levels} delta(granularity)={self.granularity:.3f}"
        )


def extract_features(
    L: CSRMatrix,
    params: GranularityParams | None = None,
    *,
    schedule: LevelSchedule | None = None,
) -> MatrixFeatures:
    """Compute all features of ``L`` in one pass.

    ``schedule`` may be supplied when the caller already level-scheduled
    the matrix (the experiment harness does) to avoid recomputation.
    """
    if schedule is None:
        schedule = compute_levels(L)
    lengths = L.row_lengths()
    return MatrixFeatures(
        n_rows=L.n_rows,
        nnz=L.nnz,
        avg_nnz_per_row=L.avg_nnz_per_row(),
        max_nnz_per_row=int(lengths.max()) if L.n_rows else 0,
        n_levels=schedule.n_levels,
        avg_rows_per_level=schedule.avg_rows_per_level(),
        max_level_width=schedule.max_level_width(),
        granularity=parallel_granularity_from_stats(
            max(schedule.avg_rows_per_level(), 1.0),
            L.avg_nnz_per_row(),
            params,
        ),
        schedule=schedule,
        row_lengths=lengths,
    )
