"""Row/column reorderings for triangular systems.

The related-work section of the paper surveys reordering-based
optimizations (data reordering, locality/concurrency balancing).  Two
classic inspector-executor transforms are provided:

* :func:`reorder_by_levels` — permute rows (and columns, symmetrically)
  so each level-set becomes contiguous.  The permuted matrix is still
  lower triangular, its level structure is preserved level-for-level,
  and level-set executors get perfectly coalesced row blocks.
* :func:`reorder_reverse_cuthill_mckee` — bandwidth-reducing RCM on the
  symmetrized pattern, then re-triangularized; deepens locality for
  banded-ish systems.

Both return the permuted matrix plus the permutation so solutions can
be mapped back with :func:`apply_inverse_permutation`.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.analysis.levels import LevelSchedule, compute_levels
from repro.errors import NotTriangularError
from repro.sparse.coo import COOMatrix
from repro.sparse.convert import coo_to_csr, csr_to_coo
from repro.sparse.csr import CSRMatrix

__all__ = [
    "reorder_by_levels",
    "reorder_reverse_cuthill_mckee",
    "permute_symmetric",
    "apply_inverse_permutation",
]


def permute_symmetric(L: CSRMatrix, perm: np.ndarray) -> CSRMatrix:
    """Symmetric permutation ``B[p[i], p[j]] = A[i, j]``.

    ``perm[i]`` is the *new* index of old row ``i``.
    """
    if not L.is_square:
        raise NotTriangularError(f"need a square matrix, got {L.shape}")
    perm = np.asarray(perm, dtype=np.int64)
    if sorted(perm.tolist()) != list(range(L.n_rows)):
        raise ValueError("perm must be a permutation of 0..n-1")
    coo = csr_to_coo(L)
    return coo_to_csr(
        COOMatrix(L.n_rows, L.n_cols, perm[coo.rows], perm[coo.cols],
                  coo.values)
    )


def apply_inverse_permutation(x_perm: np.ndarray, perm: np.ndarray) -> np.ndarray:
    """Map a solution of the permuted system back to original ordering.

    If ``L' = P L P^T`` and ``L' y = P b``, then ``x = P^T y``, i.e.
    ``x[i] = y[perm[i]]``.
    """
    perm = np.asarray(perm, dtype=np.int64)
    return np.asarray(x_perm)[perm]


def reorder_by_levels(
    L: CSRMatrix, *, schedule: LevelSchedule | None = None
) -> tuple[CSRMatrix, np.ndarray]:
    """Permute rows so level-sets are contiguous (levels ascending).

    Returns ``(L_perm, perm)`` with ``perm[i]`` the new index of old row
    ``i``.  Dependencies always point from higher to lower levels, so
    the permuted matrix stays lower triangular.
    """
    schedule = schedule or compute_levels(L)
    # schedule.order lists old rows in (level, row) order: old order[k]
    # moves to new position k
    perm = np.empty(L.n_rows, dtype=np.int64)
    perm[schedule.order] = np.arange(L.n_rows, dtype=np.int64)
    return permute_symmetric(L, perm), perm


def reorder_reverse_cuthill_mckee(L: CSRMatrix) -> tuple[CSRMatrix, np.ndarray]:
    """RCM on the symmetrized pattern, re-triangularized.

    RCM produces an ordering that reduces bandwidth; since an arbitrary
    permutation of a triangular matrix need not stay triangular, entries
    landing above the diagonal are mirrored back below it (the pattern
    is treated symmetrically, which is how RCM is defined anyway).
    Returns ``(L_rcm, perm)``.
    """
    if not L.is_square:
        raise NotTriangularError(f"need a square matrix, got {L.shape}")
    n = L.n_rows
    g = nx.Graph()
    g.add_nodes_from(range(n))
    coo = csr_to_coo(L)
    strict = coo.cols < coo.rows
    g.add_edges_from(zip(coo.rows[strict].tolist(), coo.cols[strict].tolist()))
    order = list(nx.utils.reverse_cuthill_mckee_ordering(g))
    perm = np.empty(n, dtype=np.int64)
    perm[order] = np.arange(n, dtype=np.int64)

    new_rows = perm[coo.rows]
    new_cols = perm[coo.cols]
    # mirror any entry that ended up strictly above the diagonal
    flip = new_cols > new_rows
    new_rows[flip], new_cols[flip] = new_cols[flip].copy(), new_rows[flip].copy()
    return (
        coo_to_csr(COOMatrix(n, n, new_rows, new_cols, coo.values)),
        perm,
    )
