"""Dependency DAG construction (Section 2.1, Figure 1(b)).

The solution dependencies of ``Lx = b`` form a directed acyclic graph with
one node per component and an edge ``j -> i`` for every strictly-lower
element ``L[i, j]``.  The DAG view is mostly useful for inspection,
visualization and property testing (levels computed on the DAG with
networkx must equal the CSR sweep of :mod:`repro.analysis.levels`); the
solvers themselves never materialize it.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.sparse.csr import CSRMatrix

__all__ = ["dependency_dag", "dependency_edge_count", "critical_path"]


def dependency_dag(L: CSRMatrix) -> "nx.DiGraph":
    """Build the component dependency DAG as a networkx digraph.

    Edge ``j -> i`` means component ``x_i`` consumes ``x_j``.  Diagonal
    elements produce no edge.
    """
    g = nx.DiGraph()
    g.add_nodes_from(range(L.n_rows))
    rows = np.repeat(np.arange(L.n_rows, dtype=np.int64), L.row_lengths())
    strict = L.col_idx < rows
    g.add_edges_from(zip(L.col_idx[strict].tolist(), rows[strict].tolist()))
    return g


def dependency_edge_count(L: CSRMatrix) -> int:
    """Number of dependency edges (strictly-lower stored elements)."""
    rows = np.repeat(np.arange(L.n_rows, dtype=np.int64), L.row_lengths())
    return int(np.count_nonzero(L.col_idx < rows))


def critical_path(L: CSRMatrix) -> list[int]:
    """One longest dependency chain (component indices, source first).

    Its length minus one equals the number of inter-level steps any
    parallel schedule must serialize — the fundamental lower bound on
    SpTRSV parallel time.
    """
    n = L.n_rows
    if n == 0:
        return []
    best_len = np.zeros(n, dtype=np.int64)
    best_pred = np.full(n, -1, dtype=np.int64)
    row_ptr, col_idx = L.row_ptr, L.col_idx
    for i in range(n):
        cols = col_idx[row_ptr[i]: row_ptr[i + 1]]
        deps = cols[cols < i]
        if deps.size:
            k = deps[np.argmax(best_len[deps])]
            best_len[i] = best_len[k] + 1
            best_pred[i] = k
    end = int(np.argmax(best_len))
    path = [end]
    while best_pred[path[-1]] >= 0:
        path.append(int(best_pred[path[-1]]))
    path.reverse()
    return path
