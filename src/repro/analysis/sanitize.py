"""Dynamic sanitizers for simulated sync-free kernels.

A :class:`Sanitizer` is an opt-in observer wired into
:class:`~repro.gpu.memory.GlobalMemory` and driven by
:class:`~repro.gpu.simt.SIMTEngine` /
:class:`~repro.gpu.warp.Warp`: every counted lane access (load, store,
atomic, fence, spin resolution) is reported with the issuing warp, lane
and cycle.  Against that stream the sanitizer checks the
publication protocol every synchronization-free SpTRSV kernel in this
repository relies on:

* **memory-order** — a store to a flag array location must be preceded,
  on the same lane, by the matching value store and a ``threadfence``
  *between* the two (the value-store → fence → flag-store discipline of
  Algorithm 3 line 21 / Algorithm 5 line 15);
* **race** — a lane may load a published component ``x[j]`` only after
  observing ``get_value[j]`` at its published value (or having produced
  ``x[j]`` itself);
* **uninitialized-read** — a guarded component must actually have been
  stored by someone before it is consumed;
* **double-publish** — a component's flag must be raised exactly once.

Which arrays participate, and which checks apply, is configured by
:class:`PublishProtocol` records; the default set covers the standard
``get_value``/``x`` unit-flag protocol of :mod:`repro.solvers._sim`
(including the strided multi-RHS layout) and the fence-ordering half of
the SyncFree-CSC ``counter``/``left_sum`` protocol, whose counters are
legitimately stored many times and legitimately read at zero.

Violations become :class:`~repro.analysis.hazards.Hazard` records with
lane/cycle provenance; in ``raise`` mode (the default) the first
error-severity hazard raises :class:`~repro.errors.HazardError`
immediately, with the tail of the warp's tracer timeline attached when a
tracer is active.  Overhead is pay-for-use: with no sanitizer attached
the engine and memory hot paths only test one attribute
(``benchmarks/bench_sanitizer_overhead.py`` tracks the *enabled* cost).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.hazards import (
    DOUBLE_PUBLISH,
    MEMORY_ORDER,
    RACE,
    UNINITIALIZED_READ,
    Hazard,
)
from repro.errors import HazardError

__all__ = ["PublishProtocol", "Sanitizer", "DEFAULT_PROTOCOLS"]


@dataclass(frozen=True)
class PublishProtocol:
    """One flag-array/value-array publication pairing to check.

    ``published`` is the flag value that signals availability.  When the
    value array is a strided block (multi-RHS: ``x`` holds ``k`` values
    per row), the stride is inferred from the allocated array lengths and
    value index ``i`` maps to flag row ``i // stride``.
    """

    flag_array: str
    value_array: str
    published: float = 1
    check_order: bool = True
    check_race: bool = True
    check_uninit: bool = True
    check_double_publish: bool = True


#: The standard unit-flag protocol plus the CSC counter protocol (order
#: check only: counters increment once per dependency and rows with
#: in-degree zero legitimately read ``left_sum`` unwritten).
DEFAULT_PROTOCOLS: tuple[PublishProtocol, ...] = (
    PublishProtocol(flag_array="get_value", value_array="x"),
    PublishProtocol(
        flag_array="counter",
        value_array="left_sum",
        check_race=False,
        check_uninit=False,
        check_double_publish=False,
    ),
)


class _ProtocolState:
    """Mutable per-memory state of one active protocol."""

    __slots__ = (
        "proto",
        "stride",
        "value_len",
        "flag_len",
        "value_stores",      # lane -> {value idx -> op seq}
        "last_fence",        # lane -> op seq of the lane's last fence
        "last_value_store",  # lane -> op seq of the lane's last value store
        "observed",          # lane -> {flag idx -> last observed value}
        "stored_rows",       # flag rows whose value has been stored (any lane)
        "publish_count",     # flag idx -> number of published-value stores
    )

    def __init__(self, proto: PublishProtocol) -> None:
        self.proto = proto
        self.stride = 1
        self.value_len = 0
        self.flag_len = 0
        self.value_stores: dict = {}
        self.last_fence: dict = {}
        self.last_value_store: dict = {}
        self.observed: dict = {}
        self.stored_rows: set = set()
        self.publish_count: dict = {}

    def activate(self, value_len: int, flag_len: int) -> bool:
        self.value_len = value_len
        self.flag_len = flag_len
        if flag_len <= 0 or value_len % flag_len:
            return False
        self.stride = value_len // flag_len
        return True


class Sanitizer:
    """Observer implementing the dynamic hazard checks (see module doc).

    Parameters
    ----------
    protocols:
        The publication pairings to check; arrays absent from a launch
        deactivate their protocol silently.
    mode:
        ``"raise"`` aborts the launch on the first error-severity hazard
        (:class:`~repro.errors.HazardError`); ``"record"`` accumulates
        hazards in :attr:`hazards` for post-run inspection.
    """

    def __init__(
        self,
        *,
        protocols: tuple[PublishProtocol, ...] = DEFAULT_PROTOCOLS,
        mode: str = "raise",
    ) -> None:
        if mode not in ("raise", "record"):
            raise ValueError(f"mode must be 'raise' or 'record', got {mode!r}")
        self.mode = mode
        self.protocols = tuple(protocols)
        self.hazards: list[Hazard] = []
        #: set by the engine each cycle while a launch runs
        self.cycle = 0
        #: set by :meth:`set_lane` before each lane's actions
        self.warp_id: int | None = None
        self.lane_id: int | None = None
        #: tracer used for provenance tails (set by the engine factory)
        self.tracer = None
        self._mem = None
        self._by_flag: dict[str, _ProtocolState] = {}
        self._by_value: dict[str, _ProtocolState] = {}
        self._op_seq = 0
        self._in_atomic = False

    # ------------------------------------------------------------------
    # lifecycle (engine side)
    # ------------------------------------------------------------------
    def bind(self, memory) -> None:
        """Attach to one :class:`GlobalMemory`; resets per-memory state.

        Called by the engine at launch; repeated launches against the
        same memory (the level-set solver) keep their state, a fresh
        engine starts clean.
        """
        if memory is self._mem:
            return
        self._mem = memory
        self._by_flag = {}
        self._by_value = {}
        self._op_seq = 0

    def on_alloc(self, name: str, array, *, flags: bool) -> None:
        del flags
        for proto in self.protocols:
            if name == proto.flag_array:
                state = _ProtocolState(proto)
                mem_arrays = self._mem._arrays if self._mem is not None else {}
                value = mem_arrays.get(proto.value_array)
                if value is not None and state.activate(len(value), len(array)):
                    self._by_flag[proto.flag_array] = state
                    self._by_value[proto.value_array] = state

    # ------------------------------------------------------------------
    # access stream (memory / warp side)
    # ------------------------------------------------------------------
    def set_lane(self, warp_id: int, lane_id: int) -> None:
        self.warp_id = warp_id
        self.lane_id = lane_id

    def clear_lane(self) -> None:
        self.warp_id = None
        self.lane_id = None

    @property
    def _lane_key(self) -> tuple[int, int] | None:
        if self.warp_id is None:
            return None  # host-side access: not a lane, not checked
        return (self.warp_id, self.lane_id)

    def on_load(self, name: str, idx: int, value) -> None:
        lane = self._lane_key
        if lane is None:
            return
        state = self._by_flag.get(name)
        if state is not None:
            state.observed.setdefault(lane, {})[idx] = value
            return
        state = self._by_value.get(name)
        if state is not None:
            self._check_value_load(state, lane, name, idx)

    def on_store(self, name: str, idx: int, value, *, atomic: bool = False) -> None:
        lane = self._lane_key
        if lane is None:
            return
        self._op_seq += 1
        seq = self._op_seq
        state = self._by_value.get(name)
        if state is not None:
            state.value_stores.setdefault(lane, {})[idx] = seq
            state.last_value_store[lane] = seq
            state.stored_rows.add(idx // state.stride)
        state = self._by_flag.get(name)
        if state is not None:
            self._check_flag_store(state, lane, name, idx, value, atomic, seq)
            # a flag store is also this lane's freshest observation (memory
            # reports the post-store cell value, so atomics are covered)
            state.observed.setdefault(lane, {})[idx] = value

    def on_fence(self) -> None:
        lane = self._lane_key
        if lane is None:
            return
        self._op_seq += 1
        for state in self._by_flag.values():
            state.last_fence[lane] = self._op_seq

    def on_atomic(self, name: str, idx: int, value) -> None:
        self.on_store(name, idx, value, atomic=True)

    def on_sync_observed(
        self, warp_id: int, lane_id: int, name: str, idx: int, value
    ) -> None:
        """A parked SpinWait resolved: record the observation for the lane.

        Spin wake-ups validate their predicate through an uncounted
        ``peek`` (the load already happened when the lane first spun), so
        the warp reports the satisfied observation here instead.
        """
        state = self._by_flag.get(name)
        if state is not None:
            state.observed.setdefault((warp_id, lane_id), {})[idx] = value

    # ------------------------------------------------------------------
    # checks
    # ------------------------------------------------------------------
    def _check_value_load(
        self, state: _ProtocolState, lane, name: str, idx: int
    ) -> None:
        proto = state.proto
        row = idx // state.stride
        lane_stores = state.value_stores.get(lane)
        if lane_stores and idx in lane_stores:
            return  # producer re-reading its own component
        if proto.check_race:
            seen = state.observed.get(lane, {}).get(row)
            if seen != proto.published:
                seen_desc = "never observed" if seen is None else f"last saw {seen!r}"
                self._report(
                    Hazard(
                        kind=RACE,
                        message=(
                            f"load of {name}[{idx}] before observing "
                            f"{proto.flag_array}[{row}] == {proto.published} "
                            f"({seen_desc}): the consumer races the producer's "
                            "publish"
                        ),
                        array=name,
                        index=idx,
                        warp=lane[0],
                        lane=lane[1],
                        cycle=self.cycle,
                    )
                )
                return
        if proto.check_uninit and row not in state.stored_rows:
            self._report(
                Hazard(
                    kind=UNINITIALIZED_READ,
                    message=(
                        f"load of {name}[{idx}] but no lane ever stored it: "
                        f"the flag {proto.flag_array}[{row}] was raised "
                        "without its value"
                    ),
                    array=name,
                    index=idx,
                    warp=lane[0],
                    lane=lane[1],
                    cycle=self.cycle,
                )
            )

    def _check_flag_store(
        self,
        state: _ProtocolState,
        lane,
        name: str,
        idx: int,
        value,
        atomic: bool,
        seq: int,
    ) -> None:
        proto = state.proto
        if proto.check_order:
            fence = state.last_fence.get(lane, 0)
            lane_stores = state.value_stores.get(lane, {})
            # the matching value store: exact row when present, else the
            # lane's latest value store (strided layouts publish several
            # value elements under one flag)
            matches = [
                s for i, s in lane_stores.items() if i // state.stride == idx
            ]
            value_seq = max(matches) if matches else 0
            if value_seq == 0:
                self._report(
                    Hazard(
                        kind=MEMORY_ORDER,
                        message=(
                            f"store to {name}[{idx}] but this lane never "
                            f"stored the matching {proto.value_array} "
                            "component: flag published without its value"
                        ),
                        array=name,
                        index=idx,
                        warp=lane[0],
                        lane=lane[1],
                        cycle=self.cycle,
                    )
                )
            elif not (value_seq < fence < seq):
                self._report(
                    Hazard(
                        kind=MEMORY_ORDER,
                        message=(
                            f"store to {name}[{idx}] without a threadfence "
                            f"between the {proto.value_array} store and the "
                            "flag store: consumers may observe the flag "
                            "before the value under a weak memory model"
                        ),
                        array=name,
                        index=idx,
                        warp=lane[0],
                        lane=lane[1],
                        cycle=self.cycle,
                    )
                )
        if proto.check_double_publish and not atomic and value == proto.published:
            count = state.publish_count.get(idx, 0) + 1
            state.publish_count[idx] = count
            if count > 1:
                self._report(
                    Hazard(
                        kind=DOUBLE_PUBLISH,
                        message=(
                            f"{name}[{idx}] published {count} times: a "
                            "component's flag must be raised exactly once"
                        ),
                        array=name,
                        index=idx,
                        warp=lane[0],
                        lane=lane[1],
                        cycle=self.cycle,
                    )
                )

    # ------------------------------------------------------------------
    def _report(self, hazard: Hazard) -> None:
        self.hazards.append(hazard)
        if self.tracer is not None and hazard.warp is not None:
            self.tracer.record(self.cycle, hazard.warp, "hazard")
        if self.mode == "raise" and hazard.is_error:
            tail = ()
            if self.tracer is not None and hazard.warp is not None:
                tail = self.tracer.tail(hazard.warp)
            raise HazardError(hazard, trace_tail=tail)

    def assert_clean(self) -> None:
        """Raise :class:`HazardError` if any hazard was recorded."""
        for hazard in self.hazards:
            if hazard.is_error:
                raise HazardError(hazard)

    def summary(self) -> dict[str, int]:
        """Hazard counts by kind."""
        out: dict[str, int] = {}
        for h in self.hazards:
            out[h.kind] = out.get(h.kind, 0) + 1
        return out
