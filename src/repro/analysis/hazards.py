"""Hazard taxonomy shared by the static verifier and dynamic sanitizers.

A *hazard* is a way a synchronization-free SpTRSV kernel can go wrong
that ordinary numerical testing does not see until it deadlocks or
silently corrupts a component.  The taxonomy names every failure mode
this repository's analysis layers can detect (see ``docs/analysis.md``):

Static (schedule-level, found without running the simulator)
    * ``intra-warp-blocking-spin`` — a blocking busy-wait whose producer
      is a lane of the same lock-step warp (the paper's Challenge 1).
    * ``admission-order`` — a dependency pointing at a warp admitted
      *later* in grid order than its consumer, which bounded residency
      can turn into a scheduling deadlock.
    * ``phase-bound-exceeded`` — an intra-warp dependency chain deeper
      than the Two-Phase ``WARP_SIZE`` outer-loop bound (Algorithm 4).

Dynamic (observed by the sanitizers during a simulated launch)
    * ``memory-order`` — a flag store not preceded by the matching value
      store plus a ``threadfence`` from the same lane.
    * ``race`` — a load of ``x[j]`` by a consumer whose last observed
      ``get_value[j]`` was not the published value.
    * ``uninitialized-read`` — a load of a solution component no lane
      ever stored.
    * ``double-publish`` — a component's flag raised more than once.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Hazard",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "INTRA_WARP_BLOCKING_SPIN",
    "ADMISSION_ORDER",
    "PHASE_BOUND_EXCEEDED",
    "MEMORY_ORDER",
    "RACE",
    "UNINITIALIZED_READ",
    "DOUBLE_PUBLISH",
    "STATIC_KINDS",
    "DYNAMIC_KINDS",
]

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

# -- static kinds ------------------------------------------------------
INTRA_WARP_BLOCKING_SPIN = "intra-warp-blocking-spin"
ADMISSION_ORDER = "admission-order"
PHASE_BOUND_EXCEEDED = "phase-bound-exceeded"

# -- dynamic kinds -----------------------------------------------------
MEMORY_ORDER = "memory-order"
RACE = "race"
UNINITIALIZED_READ = "uninitialized-read"
DOUBLE_PUBLISH = "double-publish"

STATIC_KINDS = frozenset(
    {INTRA_WARP_BLOCKING_SPIN, ADMISSION_ORDER, PHASE_BOUND_EXCEEDED}
)
DYNAMIC_KINDS = frozenset(
    {MEMORY_ORDER, RACE, UNINITIALIZED_READ, DOUBLE_PUBLISH}
)


@dataclass(frozen=True)
class Hazard:
    """One detected hazard, static or dynamic.

    Static hazards carry matrix-level provenance (``index`` is a row,
    ``warp``/``lane`` the scheduled position of the consumer); dynamic
    hazards carry execution provenance (the lane and cycle at which the
    sanitizer observed the violation, taken from the live engine and its
    tracer).  Fields that do not apply are ``None``.
    """

    kind: str
    message: str
    severity: str = SEVERITY_ERROR
    array: str | None = None
    index: int | None = None
    warp: int | None = None
    lane: int | None = None
    cycle: int | None = None

    def format(self) -> str:
        """Render ``[kind] message (array[idx], warp w lane l, cycle c)``."""
        where = []
        if self.array is not None:
            loc = self.array if self.index is None else f"{self.array}[{self.index}]"
            where.append(loc)
        if self.warp is not None:
            lane = "" if self.lane is None else f" lane {self.lane}"
            where.append(f"warp {self.warp}{lane}")
        if self.cycle is not None:
            where.append(f"cycle {self.cycle}")
        suffix = f" ({', '.join(where)})" if where else ""
        return f"[{self.kind}] {self.message}{suffix}"

    @property
    def is_error(self) -> bool:
        return self.severity == SEVERITY_ERROR
