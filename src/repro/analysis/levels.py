"""Level-set computation for lower triangular matrices.

A *level* (Section 2.1) is the solution depth of a component in the
dependency DAG: ``level(i) = 1 + max(level(j))`` over all ``j`` with
``L[i, j] != 0, j < i``, and ``level(i) = 0`` for rows with no
off-diagonal entry.  Components that share a level form a *level-set* and
can be solved in parallel.

The computation here is the preprocessing step the level-set SpTRSV
algorithm (Algorithm 2) needs — the paper charges its cost in Table 1.  We
implement it as a single forward sweep over the CSR arrays, which is
O(nnz) like the production implementations in [1, 35].

:func:`merge_levels` adds the schedule-side optimization for the *deep*
regime: adjacent skinny levels are coalesced into groups by substituting
the few cross-level dependencies inside a group with the dependent rows'
own linear expansions (Böhnlein et al., arXiv:2503.05408).  Each merged
group then has no internal ordering constraint, so an executor pays one
synchronization (or one interpreter step) per *group* instead of per
level, at the price of a bounded amount of redundant arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import NotTriangularError
from repro.sparse.csr import CSRMatrix

__all__ = [
    "LevelSchedule",
    "MergedSchedule",
    "compute_levels",
    "merge_levels",
]


@dataclass(frozen=True)
class LevelSchedule:
    """The output of level-set preprocessing (Section 2.2).

    Attributes
    ----------
    level_of_row:
        ``level_of_row[i]`` is the level of component ``x_i``.
    level_ptr:
        CSR-style pointer into :attr:`order`; level ``k`` occupies
        ``order[level_ptr[k]:level_ptr[k+1]]``.  This is the paper's
        ``layer_num`` array.
    order:
        Row indices rearranged so rows of one level are contiguous,
        preserving ascending row order inside a level (the paper's
        ``order`` array).
    """

    level_of_row: np.ndarray
    level_ptr: np.ndarray
    order: np.ndarray

    @property
    def n_levels(self) -> int:
        """Number of levels (the paper's ``layer``)."""
        return len(self.level_ptr) - 1

    @property
    def n_rows(self) -> int:
        return len(self.level_of_row)

    def level_sizes(self) -> np.ndarray:
        """Number of components in each level-set."""
        return np.diff(self.level_ptr)

    def rows_in_level(self, k: int) -> np.ndarray:
        """Row indices of level ``k`` in ascending order."""
        if not 0 <= k < self.n_levels:
            raise IndexError(f"level {k} out of range for {self.n_levels} levels")
        return self.order[self.level_ptr[k]: self.level_ptr[k + 1]]

    def avg_rows_per_level(self) -> float:
        """The paper's ``n_level`` statistic (Section 3.2)."""
        if self.n_levels == 0:
            return 0.0
        return self.n_rows / self.n_levels

    def max_level_width(self) -> int:
        """Size of the widest level-set (peak available parallelism)."""
        if self.n_levels == 0:
            return 0
        return int(self.level_sizes().max())


#: Iterations of the vectorized relaxation before falling back to the
#: serial sweep (deep-level matrices converge slowly under relaxation).
_RELAXATION_LIMIT = 96


def compute_levels(L: CSRMatrix) -> LevelSchedule:
    """Compute the level schedule of a lower triangular CSR matrix.

    Two strategies share the exact same semantics:

    * a vectorized fixed-point relaxation (one O(nnz) ``reduceat`` pass
      per level) — fast for the wide, shallow matrices the paper targets;
    * a serial forward sweep — taken over when the level count exceeds
      :data:`_RELAXATION_LIMIT` (deep FEM/chain structures), where
      relaxation would need one pass per level.
    """
    n = L.n_rows
    if not L.is_square:
        raise NotTriangularError(f"matrix must be square, got {L.shape}")
    rows = np.repeat(np.arange(n, dtype=np.int64), L.row_lengths())
    if np.any(L.col_idx > rows):
        bad = int(np.nonzero(L.col_idx > rows)[0][0])
        raise NotTriangularError(
            f"upper-triangular element stored at position {bad} "
            f"(row {int(rows[bad])}, col {int(L.col_idx[bad])})"
        )

    level = _levels_by_relaxation(n, rows, L.col_idx)
    if level is None:
        level = _levels_serial(L)

    n_levels = int(level.max()) + 1 if n else 0
    level_ptr = np.zeros(n_levels + 1, dtype=np.int64)
    np.add.at(level_ptr, level + 1, 1)
    np.cumsum(level_ptr, out=level_ptr)
    # stable sort keeps ascending row order inside each level
    order = np.argsort(level, kind="stable").astype(np.int64)
    return LevelSchedule(level_of_row=level, level_ptr=level_ptr, order=order)


def _levels_by_relaxation(
    n: int, rows: np.ndarray, col_idx: np.ndarray
) -> np.ndarray | None:
    """Fixed-point relaxation of ``level[i] = 1 + max(level[deps])``.

    Returns ``None`` when convergence exceeds :data:`_RELAXATION_LIMIT`
    iterations (the caller falls back to the serial sweep).
    """
    strict = col_idx < rows
    src = col_idx[strict]
    dst_counts = np.zeros(n + 1, dtype=np.int64)
    np.add.at(dst_counts, rows[strict] + 1, 1)
    ptr = np.cumsum(dst_counts)
    if len(src) == 0:
        return np.zeros(n, dtype=np.int64)
    nonempty = ptr[:-1] != ptr[1:]
    starts = ptr[:-1][nonempty]  # strictly increasing, tiles src exactly

    level = np.zeros(n, dtype=np.int64)
    seg_max = np.zeros(n, dtype=np.int64)
    for _ in range(_RELAXATION_LIMIT):
        cand = level[src] + 1
        seg_max[nonempty] = np.maximum.reduceat(cand, starts)
        new_level = np.maximum(level, seg_max)
        if np.array_equal(new_level, level):
            return level
        level = new_level
    return None


def _levels_serial(L: CSRMatrix) -> np.ndarray:
    """Serial forward sweep (dependencies precede their consumers)."""
    n = L.n_rows
    level = np.zeros(n, dtype=np.int64)
    row_ptr = L.row_ptr
    col_idx = L.col_idx
    for i in range(n):
        lo, hi = int(row_ptr[i]), int(row_ptr[i + 1])
        cols = col_idx[lo:hi]
        deps = cols[cols < i]
        if deps.size:
            level[i] = level[deps].max() + 1
    return level


#: Levels wider than this never join a merged group — wide levels already
#: amortize per-level overhead over many rows, and their expansions would
#: blow the redundant-work budget anyway.
DEFAULT_MERGE_MAX_WIDTH = 32

#: A group's expanded coefficient count may not exceed ``budget`` times
#: its direct count.  On a pure chain this caps groups at ``2 * budget``
#: levels (the expansion of the t-th chained row carries t + 1 terms).
DEFAULT_MERGE_BUDGET = 4.0

#: Hard cap on levels per group regardless of budget headroom, keeping
#: the inspector's substitution pass (and its working sets) bounded.
DEFAULT_MERGE_MAX_GROUP = 32


@dataclass(frozen=True)
class MergedSchedule:
    """A level schedule with adjacent skinny levels coalesced into groups.

    Rows inside one group are made mutually independent by *substitution*:
    when row ``i`` depends on row ``j`` of an earlier level in the same
    group, ``x_j`` is replaced by its own linear expansion over inputs
    computed before the group (earlier ``x`` entries and right-hand-side
    values).  The group then executes as a single step.  The duplicated
    coefficients are the redundant work the paper's flop-vs-sync tradeoff
    buys synchronization freedom with.

    This object is purely *structural* — it records which base levels fuse
    and how many coefficients the substituted form carries.  The numeric
    expansion itself is materialized by the compiled plan builder
    (:func:`repro.solvers.compiled.build_compiled_plan`), which replays the
    same greedy grouping decisions recorded here.

    Attributes
    ----------
    base:
        The unmerged :class:`LevelSchedule` this grouping refines.
    group_ptr:
        CSR-style pointer into base levels; merged level ``g`` spans base
        levels ``group_ptr[g]:group_ptr[g+1]``.
    level_ptr:
        CSR-style pointer into :attr:`LevelSchedule.order`; merged level
        ``g`` owns rows ``base.order[level_ptr[g]:level_ptr[g+1]]``.
        Always equals ``base.level_ptr[group_ptr]``.
    direct_nnz:
        Coefficients of the unsubstituted scaled form — one per stored
        matrix element (every off-diagonal dependency plus one ``b``
        coefficient per row), i.e. ``nnz(L)``.
    expanded_nnz:
        Coefficients after substitution; ``expanded_nnz - direct_nnz`` is
        the redundant work the merge buys its step reduction with.
    """

    base: LevelSchedule
    group_ptr: np.ndarray
    level_ptr: np.ndarray
    direct_nnz: int
    expanded_nnz: int

    @property
    def n_levels(self) -> int:
        """Number of merged levels (execution steps)."""
        return len(self.group_ptr) - 1

    @property
    def n_rows(self) -> int:
        return self.base.n_rows

    @property
    def order(self) -> np.ndarray:
        """Row order is inherited unchanged from the base schedule."""
        return self.base.order

    @property
    def redundant_nnz(self) -> int:
        """Duplicated coefficients introduced by substitution."""
        return self.expanded_nnz - self.direct_nnz

    def level_sizes(self) -> np.ndarray:
        """Number of rows in each merged level."""
        return np.diff(self.level_ptr)

    def group_sizes(self) -> np.ndarray:
        """Number of base levels fused into each merged level."""
        return np.diff(self.group_ptr)

    def compression(self) -> float:
        """Base levels per merged level (synchronization reduction)."""
        if self.n_levels == 0:
            return 1.0
        return self.base.n_levels / self.n_levels


def merge_levels(
    L: CSRMatrix,
    schedule: LevelSchedule | None = None,
    *,
    max_width: int = DEFAULT_MERGE_MAX_WIDTH,
    budget: float = DEFAULT_MERGE_BUDGET,
    max_group: int = DEFAULT_MERGE_MAX_GROUP,
) -> MergedSchedule:
    """Greedily coalesce adjacent skinny levels under a redundant-work budget.

    Levels are scanned in order and appended to the current group while
    all of the following hold; otherwise the group closes and the level
    starts a new one:

    * the level's width is at most ``max_width`` (wide levels always form
      singleton groups and incur no redundant work);
    * the group holds fewer than ``max_group`` levels;
    * after substituting this level's intra-group dependencies, the
      group's expanded coefficient count stays within ``budget`` times its
      direct count.

    The substitution is simulated structurally: each in-group row carries
    the *set* of pre-group inputs its value is a linear combination of
    (earlier ``x`` entries, encoded as their row index, and ``b`` entries,
    encoded as ``n + row``).  Merging a level unions the input sets of its
    in-group dependencies — exactly the support of the numeric expansion
    the compiled plan builder later materializes.
    """
    if max_width < 1:
        raise ValueError(f"max_width must be >= 1, got {max_width}")
    if max_group < 1:
        raise ValueError(f"max_group must be >= 1, got {max_group}")
    if budget < 1.0:
        raise ValueError(f"budget must be >= 1.0, got {budget}")
    if schedule is None:
        schedule = compute_levels(L)

    n = L.n_rows
    row_ptr = L.row_ptr
    col_idx = L.col_idx
    level_ptr = schedule.level_ptr
    order = schedule.order
    row_lengths = np.diff(row_ptr)

    group_starts: list[int] = [0]
    expanded_total = 0

    # state of the (open) current group
    group_levels = 0  # levels accumulated so far
    group_direct = 0  # direct coefficients of those levels
    group_expanded = 0  # coefficients after substitution
    inputs: dict[int, frozenset[int]] = {}  # row -> support of its expansion

    def close_group(next_level: int) -> None:
        nonlocal group_levels, group_direct, group_expanded, expanded_total
        if group_levels:
            group_starts.append(next_level)
            expanded_total += group_expanded
        group_levels = group_direct = group_expanded = 0
        inputs.clear()

    for lvl in range(schedule.n_levels):
        r0, r1 = int(level_ptr[lvl]), int(level_ptr[lvl + 1])
        rows = order[r0:r1]
        width = r1 - r0
        # direct scaled form: every off-diagonal dependency plus one b term
        direct = int(row_lengths[rows].sum())

        if width > max_width:
            # wide level: singleton group, no substitution, no redundancy
            close_group(lvl)
            group_levels, group_direct, group_expanded = 1, direct, direct
            close_group(lvl + 1)
            continue

        # build this level's input sets, substituting in-group deps
        level_sets: dict[int, frozenset[int]] = {}
        expanded = 0
        for i in rows.tolist():
            support = {n + i}
            for j in col_idx[row_ptr[i]: row_ptr[i + 1] - 1].tolist():
                sub = inputs.get(j)
                if sub is None:
                    support.add(j)
                else:
                    support |= sub
            fs = frozenset(support)
            level_sets[i] = fs
            expanded += len(fs)

        if group_levels and (
            group_levels >= max_group
            or group_expanded + expanded > budget * (group_direct + direct)
        ):
            close_group(lvl)
            # re-derive the sets without in-group substitution: the group
            # just closed, so every dependency is now external
            level_sets = {}
            expanded = 0
            for i in rows.tolist():
                fs = frozenset(
                    col_idx[row_ptr[i]: row_ptr[i + 1] - 1].tolist()
                ) | {n + i}
                level_sets[i] = fs
                expanded += len(fs)

        group_levels += 1
        group_direct += direct
        group_expanded += expanded
        inputs.update(level_sets)
    close_group(schedule.n_levels)

    group_ptr = np.asarray(group_starts, dtype=np.int64)
    return MergedSchedule(
        base=schedule,
        group_ptr=group_ptr,
        level_ptr=level_ptr[group_ptr].copy(),
        direct_nnz=int(L.nnz),
        expanded_nnz=expanded_total,
    )
