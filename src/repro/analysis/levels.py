"""Level-set computation for lower triangular matrices.

A *level* (Section 2.1) is the solution depth of a component in the
dependency DAG: ``level(i) = 1 + max(level(j))`` over all ``j`` with
``L[i, j] != 0, j < i``, and ``level(i) = 0`` for rows with no
off-diagonal entry.  Components that share a level form a *level-set* and
can be solved in parallel.

The computation here is the preprocessing step the level-set SpTRSV
algorithm (Algorithm 2) needs — the paper charges its cost in Table 1.  We
implement it as a single forward sweep over the CSR arrays, which is
O(nnz) like the production implementations in [1, 35].
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import NotTriangularError
from repro.sparse.csr import CSRMatrix

__all__ = ["LevelSchedule", "compute_levels"]


@dataclass(frozen=True)
class LevelSchedule:
    """The output of level-set preprocessing (Section 2.2).

    Attributes
    ----------
    level_of_row:
        ``level_of_row[i]`` is the level of component ``x_i``.
    level_ptr:
        CSR-style pointer into :attr:`order`; level ``k`` occupies
        ``order[level_ptr[k]:level_ptr[k+1]]``.  This is the paper's
        ``layer_num`` array.
    order:
        Row indices rearranged so rows of one level are contiguous,
        preserving ascending row order inside a level (the paper's
        ``order`` array).
    """

    level_of_row: np.ndarray
    level_ptr: np.ndarray
    order: np.ndarray

    @property
    def n_levels(self) -> int:
        """Number of levels (the paper's ``layer``)."""
        return len(self.level_ptr) - 1

    @property
    def n_rows(self) -> int:
        return len(self.level_of_row)

    def level_sizes(self) -> np.ndarray:
        """Number of components in each level-set."""
        return np.diff(self.level_ptr)

    def rows_in_level(self, k: int) -> np.ndarray:
        """Row indices of level ``k`` in ascending order."""
        if not 0 <= k < self.n_levels:
            raise IndexError(f"level {k} out of range for {self.n_levels} levels")
        return self.order[self.level_ptr[k]: self.level_ptr[k + 1]]

    def avg_rows_per_level(self) -> float:
        """The paper's ``n_level`` statistic (Section 3.2)."""
        if self.n_levels == 0:
            return 0.0
        return self.n_rows / self.n_levels

    def max_level_width(self) -> int:
        """Size of the widest level-set (peak available parallelism)."""
        if self.n_levels == 0:
            return 0
        return int(self.level_sizes().max())


#: Iterations of the vectorized relaxation before falling back to the
#: serial sweep (deep-level matrices converge slowly under relaxation).
_RELAXATION_LIMIT = 96


def compute_levels(L: CSRMatrix) -> LevelSchedule:
    """Compute the level schedule of a lower triangular CSR matrix.

    Two strategies share the exact same semantics:

    * a vectorized fixed-point relaxation (one O(nnz) ``reduceat`` pass
      per level) — fast for the wide, shallow matrices the paper targets;
    * a serial forward sweep — taken over when the level count exceeds
      :data:`_RELAXATION_LIMIT` (deep FEM/chain structures), where
      relaxation would need one pass per level.
    """
    n = L.n_rows
    if not L.is_square:
        raise NotTriangularError(f"matrix must be square, got {L.shape}")
    rows = np.repeat(np.arange(n, dtype=np.int64), L.row_lengths())
    if np.any(L.col_idx > rows):
        bad = int(np.nonzero(L.col_idx > rows)[0][0])
        raise NotTriangularError(
            f"upper-triangular element stored at position {bad} "
            f"(row {int(rows[bad])}, col {int(L.col_idx[bad])})"
        )

    level = _levels_by_relaxation(n, rows, L.col_idx)
    if level is None:
        level = _levels_serial(L)

    n_levels = int(level.max()) + 1 if n else 0
    level_ptr = np.zeros(n_levels + 1, dtype=np.int64)
    np.add.at(level_ptr, level + 1, 1)
    np.cumsum(level_ptr, out=level_ptr)
    # stable sort keeps ascending row order inside each level
    order = np.argsort(level, kind="stable").astype(np.int64)
    return LevelSchedule(level_of_row=level, level_ptr=level_ptr, order=order)


def _levels_by_relaxation(
    n: int, rows: np.ndarray, col_idx: np.ndarray
) -> np.ndarray | None:
    """Fixed-point relaxation of ``level[i] = 1 + max(level[deps])``.

    Returns ``None`` when convergence exceeds :data:`_RELAXATION_LIMIT`
    iterations (the caller falls back to the serial sweep).
    """
    strict = col_idx < rows
    src = col_idx[strict]
    dst_counts = np.zeros(n + 1, dtype=np.int64)
    np.add.at(dst_counts, rows[strict] + 1, 1)
    ptr = np.cumsum(dst_counts)
    if len(src) == 0:
        return np.zeros(n, dtype=np.int64)
    nonempty = ptr[:-1] != ptr[1:]
    starts = ptr[:-1][nonempty]  # strictly increasing, tiles src exactly

    level = np.zeros(n, dtype=np.int64)
    seg_max = np.zeros(n, dtype=np.int64)
    for _ in range(_RELAXATION_LIMIT):
        cand = level[src] + 1
        seg_max[nonempty] = np.maximum.reduceat(cand, starts)
        new_level = np.maximum(level, seg_max)
        if np.array_equal(new_level, level):
            return level
        level = new_level
    return None


def _levels_serial(L: CSRMatrix) -> np.ndarray:
    """Serial forward sweep (dependencies precede their consumers)."""
    n = L.n_rows
    level = np.zeros(n, dtype=np.int64)
    row_ptr = L.row_ptr
    col_idx = L.col_idx
    for i in range(n):
        lo, hi = int(row_ptr[i]), int(row_ptr[i + 1])
        cols = col_idx[lo:hi]
        deps = cols[cols < i]
        if deps.size:
            level[i] = level[deps].max() + 1
    return level
