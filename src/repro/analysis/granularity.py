"""The parallel granularity indicator (Section 3.2, Equation 1).

.. math::

    \\text{granularity} = \\log_{c_1}\\!\\left(
        \\frac{\\log_{c_2}(n_{level})}{\\log_{c_3}(nnz_{row} + b_1)} + b_2
    \\right)

where ``n_level`` is the average number of components per level and
``nnz_row`` the average number of stored elements per row.  Larger
``n_level`` (wide levels) and smaller ``nnz_row`` (thin rows) push the
indicator up; the paper finds warp-level sync-free SpTRSV collapses for
granularity > 0.7 and evaluates Capellini on exactly those matrices.

Defaults follow the paper: all bases 10, ``b1 = b2 = 0.01``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.levels import compute_levels
from repro.sparse.csr import CSRMatrix

__all__ = [
    "GranularityParams",
    "parallel_granularity",
    "parallel_granularity_from_stats",
    "HIGH_GRANULARITY_THRESHOLD",
]

#: The paper's empirical cutoff: SyncFree performance declines beyond this
#: (Section 5.2, "parallel granularity larger than 0.7 ... 245 matrices").
HIGH_GRANULARITY_THRESHOLD = 0.7


@dataclass(frozen=True)
class GranularityParams:
    """Bases and biases of Equation 1 ("can be adjusted by users")."""

    c1: float = 10.0
    c2: float = 10.0
    c3: float = 10.0
    b1: float = 0.01
    b2: float = 0.01

    def __post_init__(self) -> None:
        for name in ("c1", "c2", "c3"):
            base = getattr(self, name)
            if base <= 1.0:
                raise ValueError(f"logarithm base {name}={base} must be > 1")
        if self.b1 <= 0 or self.b2 <= 0:
            raise ValueError("biases b1 and b2 must be positive")


def parallel_granularity_from_stats(
    n_level: float,
    nnz_row: float,
    params: GranularityParams | None = None,
) -> float:
    """Evaluate Equation 1 from precomputed statistics.

    Returns ``-inf``-free, always-finite output: degenerate inputs (a
    single fully-sequential chain has ``n_level = 1`` so the numerator is
    0) still produce a finite, very low granularity thanks to ``b2``.
    """
    p = params or GranularityParams()
    if n_level < 1.0 or nnz_row < 0.0:
        raise ValueError(
            f"invalid statistics: n_level={n_level}, nnz_row={nnz_row}"
        )
    numerator = math.log(n_level, p.c2) if n_level > 0 else 0.0
    denominator = math.log(nnz_row + p.b1, p.c3)
    if denominator <= 0.0:
        # nnz_row <= 1 - b1: rows are (near-)diagonal-only; parallelism is
        # maximal.  Clamp the ratio at a large value instead of flipping
        # sign, mirroring how the paper's matrices (nnz > 100k) never hit
        # this region.
        ratio = numerator / max(denominator, 1e-12) if numerator else 0.0
        ratio = abs(ratio)
    else:
        ratio = numerator / denominator
    return math.log(ratio + p.b2, p.c1)


def parallel_granularity(
    L: CSRMatrix,
    params: GranularityParams | None = None,
) -> float:
    """Evaluate Equation 1 directly on a lower triangular matrix."""
    schedule = compute_levels(L)
    return parallel_granularity_from_stats(
        schedule.avg_rows_per_level(), L.avg_nnz_per_row(), params
    )
