"""Deterministic interleaving explorer for asyncio services.

The serve engine's coalescing/timeout/fallback logic is only as correct
as its behaviour under *every* interleaving of its await points — and
live asyncio timing explores approximately one of them, nondeterministically.
This module provides the controlled half of the static/dynamic pair
whose static half is :mod:`repro.analysis.asynclint` (the simsched
approach, applied to our engine):

* :class:`VirtualClock` — virtual time.  ``sleep``/``wait_for`` park
  waiters on a deadline list instead of the loop's timer wheel; firing
  a waiter is an explicit, schedulable event.  In ``auto`` mode the
  clock pumps itself in earliest-deadline order (deterministic
  fast-forward, used by trace replay); under a scheduler, *which* due
  waiter fires next is the exploration decision.
* :class:`DeferredExecutor` — an ``Executor`` whose submissions
  complete at a scheduled virtual instant (``cost`` seconds after
  submission) instead of on a real worker thread, so "the worker
  finished before/after the deadline" becomes a schedulable ordering,
  not a race against the wall clock.
* :class:`InterleaveScheduler` — runs one scenario coroutine over a
  real event loop, but every time the loop quiesces it picks which due
  virtual event fires next: seeded-random, or dictated by an explicit
  choice list (replay / systematic mode).  Records every decision and
  a byte-stable schedule trace; detects hangs (no runnable event while
  the scenario is unfinished — the dynamic signature of a lost
  wakeup).
* :func:`explore` — schedule search: N seeded random schedules, or
  bounded systematic enumeration of all decision prefixes.  Failures
  are shrunk to a minimal reproducing choice list whose replay is
  byte-identical run to run.

The clock/executor seams plug straight into
``SolveEngine(clock=..., executor=...)``; canned engine scenarios live
in :mod:`repro.serve.scenarios`, and ``repro-sptrsv
check-interleavings`` drives them from the CLI.  See
``docs/analysis.md`` for a worked lost-wakeup example.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import itertools
import random
import time
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Iterable, Optional

__all__ = [
    "AsyncioClock",
    "DeferredExecutor",
    "ExplorationReport",
    "InterleaveScheduler",
    "InvariantViolation",
    "ScheduleHang",
    "ScheduleResult",
    "VirtualClock",
    "explore",
    "minimize_schedule",
    "run_schedule",
]

#: Event-loop rounds the scheduler yields between decisions, letting
#: chained callbacks/wakeups drain.  Each round processes the loop's
#: whole ready queue, so this bounds the *dependency depth* between two
#: virtual events, not the number of callbacks.
SETTLE_TICKS = 25

#: Runaway guard: virtual events fired in one schedule.
MAX_STEPS = 10_000


class ScheduleHang(Exception):
    """The scenario cannot finish: no virtual event is runnable while
    the scenario task is still pending — a lost wakeup (or a wait on
    something outside the harness's control)."""

    def __init__(self, message: str, *, trace: str = "") -> None:
        super().__init__(message)
        self.trace = trace


class InvariantViolation(AssertionError):
    """An invariant check failed after a schedule completed."""


# ---------------------------------------------------------------------------
# clocks
# ---------------------------------------------------------------------------


class AsyncioClock:
    """The engine's default clock: real time, stock asyncio waits."""

    def now(self) -> float:
        return time.monotonic()

    async def sleep(self, delay: float) -> None:
        await asyncio.sleep(delay)

    async def wait_for(self, awaitable: Awaitable, timeout: float) -> Any:
        return await asyncio.wait_for(awaitable, timeout)


@dataclass
class _Waiter:
    """One parked virtual event."""

    deadline: float
    seq: int
    label: str
    action: Callable[[], None]
    #: the future a ``sleep`` resolves; None for posted actions
    future: Optional["asyncio.Future"] = None

    @property
    def live(self) -> bool:
        return self.future is None or not self.future.done()


class VirtualClock:
    """Virtual time: waits become explicit, schedulable events.

    ``auto=True`` (standalone, e.g. instant trace replay) self-pumps:
    whenever waiters exist, the earliest-deadline one fires after
    ``settle_hops`` event-loop rounds, giving a deterministic
    fast-forward through virtual time.  The settle delay between fires
    lets the chain of wakeups from one event run to quiescence — in
    particular, a satisfied ``wait_for`` must get to cancel its
    deadline sleeper before the pump would fire it.  ``auto=False``
    leaves firing to an :class:`InterleaveScheduler`, which picks
    *which* due waiter fires — the exploration decision.
    """

    def __init__(
        self,
        *,
        start: float = 0.0,
        auto: bool = True,
        settle_hops: int = 10,
    ) -> None:
        self._now = float(start)
        self._auto = auto
        self._seq = itertools.count()
        self._waiters: list[_Waiter] = []
        self._pump_scheduled = False
        self.settle_hops = settle_hops
        self._hops = settle_hops

    # -- Clock protocol ------------------------------------------------
    def now(self) -> float:
        return self._now

    async def sleep(self, delay: float, *, label: str = "") -> None:
        loop = asyncio.get_running_loop()
        fut = loop.create_future()
        seq = next(self._seq)
        waiter = _Waiter(
            deadline=self._now + max(float(delay), 0.0),
            seq=seq,
            label=label or f"sleep#{seq}",
            action=lambda: (None if fut.done() else fut.set_result(None)),
            future=fut,
        )
        self._waiters.append(waiter)
        if self._auto:
            self._schedule_pump(loop)
        try:
            await fut
        except asyncio.CancelledError:
            self._discard(waiter)
            raise

    async def wait_for(self, awaitable: Awaitable, timeout: float) -> Any:
        """Virtual-deadline analogue of :func:`asyncio.wait_for`."""
        if timeout is None:
            return await awaitable
        fut = asyncio.ensure_future(awaitable)
        seq = next(self._seq)
        sleeper = asyncio.ensure_future(
            self.sleep(timeout, label=f"deadline#{seq}")
        )
        try:
            done, _pending = await asyncio.wait(
                {fut, sleeper}, return_when=asyncio.FIRST_COMPLETED
            )
            if fut in done:
                return fut.result()
            fut.cancel()
            await asyncio.gather(fut, return_exceptions=True)
            raise asyncio.TimeoutError()
        finally:
            sleeper.cancel()

    # -- event posting (DeferredExecutor, schedulers) ------------------
    def post(
        self, label: str, delay: float, action: Callable[[], None]
    ) -> _Waiter:
        """Register an arbitrary action to run at ``now + delay``."""
        waiter = _Waiter(
            deadline=self._now + max(float(delay), 0.0),
            seq=next(self._seq),
            label=label,
            action=action,
        )
        self._waiters.append(waiter)
        if self._auto:
            self._schedule_pump(asyncio.get_running_loop())
        return waiter

    # -- firing --------------------------------------------------------
    def due(self) -> list[_Waiter]:
        """Live waiters sharing the earliest deadline, in creation
        order — the scheduler's decision candidates."""
        self._waiters = [w for w in self._waiters if w.live]
        if not self._waiters:
            return []
        dmin = min(w.deadline for w in self._waiters)
        return sorted(
            (w for w in self._waiters if w.deadline == dmin),
            key=lambda w: w.seq,
        )

    def fire(self, waiter: _Waiter) -> None:
        """Advance virtual time to the waiter's deadline and run it."""
        self._discard(waiter)
        self._now = max(self._now, waiter.deadline)
        waiter.action()

    def _discard(self, waiter: _Waiter) -> None:
        try:
            self._waiters.remove(waiter)
        except ValueError:
            pass

    # -- auto pump -----------------------------------------------------
    def _schedule_pump(self, loop: "asyncio.AbstractEventLoop") -> None:
        if not self._pump_scheduled:
            self._pump_scheduled = True
            loop.call_soon(self._pump)

    def _pump(self) -> None:
        self._pump_scheduled = False
        if self._hops > 0:
            self._hops -= 1
        else:
            due = self.due()
            if due:
                self.fire(due[0])
            self._hops = self.settle_hops
        if self._waiters:
            self._schedule_pump(asyncio.get_running_loop())


# ---------------------------------------------------------------------------
# deferred executor
# ---------------------------------------------------------------------------


class DeferredExecutor:
    """Executor whose submissions complete at a virtual instant.

    Work submitted here runs *inline on the event-loop thread* when the
    scheduler fires its completion event, ``cost`` virtual seconds
    after submission — so "worker finished before/after the request
    deadline" is an explored ordering, not a thread race.
    """

    def __init__(self, clock: VirtualClock, *, cost: float = 0.0) -> None:
        self.clock = clock
        self.cost = cost
        self._seq = itertools.count()

    def submit(self, fn, *args, **kwargs) -> "concurrent.futures.Future":
        cf: concurrent.futures.Future = concurrent.futures.Future()

        def complete() -> None:
            if not cf.set_running_or_notify_cancel():
                return
            try:
                result = fn(*args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - forwarded
                cf.set_exception(exc)
            else:
                cf.set_result(result)

        self.clock.post(f"worker#{next(self._seq)}", self.cost, complete)
        return cf

    def shutdown(self, wait: bool = True, **_kwargs) -> None:
        """Nothing to tear down: work runs on the loop thread."""


# ---------------------------------------------------------------------------
# the scheduler
# ---------------------------------------------------------------------------


class InterleaveScheduler:
    """Drives one scenario under an explicit, replayable schedule.

    Decisions come from ``choices`` while it lasts (replay/systematic
    prefix), then from the seeded RNG (``seed`` given) or the first
    candidate (``seed=None`` — the deterministic default schedule).
    """

    def __init__(
        self,
        *,
        seed: Optional[int] = 0,
        choices: Optional[Iterable[int]] = None,
        settle_ticks: int = SETTLE_TICKS,
        max_steps: int = MAX_STEPS,
    ) -> None:
        self.clock = VirtualClock(auto=False)
        self.rng = random.Random(seed) if seed is not None else None
        self.preset = list(choices or [])
        self.settle_ticks = settle_ticks
        self.max_steps = max_steps
        #: ``(chosen_index, n_candidates)`` per decision, in order
        self.decisions: list[tuple[int, int]] = []
        self._trace_lines: list[str] = []

    def executor(self, *, cost: float = 0.0) -> DeferredExecutor:
        """A worker lane under this scheduler's clock."""
        return DeferredExecutor(self.clock, cost=cost)

    # ------------------------------------------------------------------
    def trace_text(self) -> str:
        """The schedule trace: one line per fired event, byte-stable
        for a given (choices, seed) pair."""
        return "\n".join(self._trace_lines)

    async def run(self, scenario: Callable[[], Awaitable]) -> Any:
        """Run ``scenario()`` to completion under this schedule."""
        main = asyncio.ensure_future(scenario())
        steps = 0
        while True:
            await self._settle()
            if main.done():
                break
            candidates = self.clock.due()
            if not candidates:
                trace = self.trace_text()
                main.cancel()
                await asyncio.gather(main, return_exceptions=True)
                raise ScheduleHang(
                    "scenario cannot finish: no virtual event is runnable "
                    "but the scenario task is still pending — a waiter was "
                    "never resolved (lost wakeup)",
                    trace=trace,
                )
            idx = self._choose(len(candidates))
            waiter = candidates[idx]
            self._trace_lines.append(
                f"step={steps:04d} t={waiter.deadline:.6f} "
                f"fire={waiter.label} choice={idx + 1}/{len(candidates)}"
            )
            self.clock.fire(waiter)
            steps += 1
            if steps > self.max_steps:
                main.cancel()
                await asyncio.gather(main, return_exceptions=True)
                raise ScheduleHang(
                    f"schedule exceeded {self.max_steps} events",
                    trace=self.trace_text(),
                )
        return main.result()

    async def _settle(self) -> None:
        for _ in range(self.settle_ticks):
            await asyncio.sleep(0)

    def _choose(self, n: int) -> int:
        if self.preset:
            idx = min(self.preset.pop(0), n - 1)
        elif self.rng is not None and n > 1:
            idx = self.rng.randrange(n)
        else:
            idx = 0
        self.decisions.append((idx, n))
        return idx


# ---------------------------------------------------------------------------
# exploration
# ---------------------------------------------------------------------------

#: A scenario factory takes the fresh scheduler of one run and returns
#: the coroutine to execute under it.
ScenarioFactory = Callable[[InterleaveScheduler], Awaitable]
#: An invariant receives ``(scheduler, scenario_return_value)`` and
#: raises :class:`InvariantViolation` / ``AssertionError`` on breach.
Invariant = Callable[[InterleaveScheduler, Any], None]


@dataclass
class ScheduleResult:
    """Outcome of one schedule."""

    seed: Optional[int]
    choices: tuple[int, ...]
    decisions: tuple[tuple[int, int], ...]
    trace: str
    error: Optional[str] = None
    hung: bool = False

    @property
    def failed(self) -> bool:
        return self.error is not None


@dataclass
class ExplorationReport:
    """What :func:`explore` found across all schedules."""

    mode: str
    n_schedules: int
    failures: list[ScheduleResult] = field(default_factory=list)
    #: shrunk choice list reproducing the first failure (replayable via
    #: ``run_schedule(factory, choices=minimal_choices)``)
    minimal_choices: Optional[tuple[int, ...]] = None
    minimal_trace: str = ""

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        if self.ok:
            return (
                f"interleavings: {self.n_schedules} {self.mode} "
                "schedule(s) explored, all invariants held"
            )
        first = self.failures[0]
        lines = [
            f"interleavings: {len(self.failures)} of {self.n_schedules} "
            f"{self.mode} schedule(s) FAILED",
            f"first failure: {first.error}",
        ]
        if self.minimal_choices is not None:
            lines.append(
                f"minimal reproducing schedule: "
                f"choices={list(self.minimal_choices)}"
            )
            if self.minimal_trace:
                lines.append("schedule trace:")
                lines.extend("  " + ln for ln in
                             self.minimal_trace.splitlines())
        return "\n".join(lines)


def run_schedule(
    scenario_factory: ScenarioFactory,
    *,
    seed: Optional[int] = None,
    choices: Optional[Iterable[int]] = None,
    invariants: Iterable[Invariant] = (),
    settle_ticks: int = SETTLE_TICKS,
) -> ScheduleResult:
    """Execute one schedule (fresh loop, fresh scheduler) and check
    invariants.  Failures are captured, never raised."""
    choice_list = tuple(choices or ())
    sched = InterleaveScheduler(
        seed=seed, choices=choice_list, settle_ticks=settle_ticks
    )
    error: Optional[str] = None
    hung = False
    trace = ""
    try:
        value = asyncio.run(sched.run(lambda: scenario_factory(sched)))
    except ScheduleHang as exc:
        error = f"hang: {exc}"
        hung = True
        trace = exc.trace
    except (InvariantViolation, AssertionError) as exc:
        error = f"invariant: {exc}"
    except Exception as exc:  # noqa: BLE001 - scenario bug, reported
        error = f"{type(exc).__name__}: {exc}"
    else:
        trace = sched.trace_text()
        for check in invariants:
            try:
                check(sched, value)
            except (InvariantViolation, AssertionError) as exc:
                error = f"invariant: {exc}"
                break
    if not trace:
        trace = sched.trace_text()
    return ScheduleResult(
        seed=seed,
        choices=choice_list,
        decisions=tuple(sched.decisions),
        trace=trace,
        error=error,
        hung=hung,
    )


def minimize_schedule(
    scenario_factory: ScenarioFactory,
    failing: ScheduleResult,
    *,
    invariants: Iterable[Invariant] = (),
) -> ScheduleResult:
    """Greedy shrink of a failing schedule to a minimal choice list.

    The failing run's decision sequence is replayed as an explicit
    choice list (making it seed-independent), then each decision is
    zeroed left-to-right when the failure survives, and trailing zeros
    are dropped (zero is the scheduler's default choice).
    """

    def attempt(choice_list: tuple[int, ...]) -> ScheduleResult:
        return run_schedule(
            scenario_factory, seed=None, choices=choice_list,
            invariants=invariants,
        )

    best = attempt(tuple(idx for idx, _n in failing.decisions))
    if not best.failed:  # schedule-independent failure: empty repro
        empty = attempt(())
        return empty if empty.failed else best
    choices = list(best.choices)
    for i, value in enumerate(choices):
        if value == 0:
            continue
        trial = choices.copy()
        trial[i] = 0
        result = attempt(tuple(trial))
        if result.failed:
            choices = trial
            best = result
    while choices and choices[-1] == 0:
        choices.pop()
        best = attempt(tuple(choices))
    return best


def explore(
    scenario_factory: ScenarioFactory,
    *,
    schedules: int = 50,
    seed: int = 0,
    mode: str = "random",
    max_depth: int = 8,
    invariants: Iterable[Invariant] = (),
    settle_ticks: int = SETTLE_TICKS,
) -> ExplorationReport:
    """Search schedules for invariant violations and hangs.

    ``mode="random"`` runs ``schedules`` independent seeded schedules
    (seeds ``seed .. seed+schedules-1``).  ``mode="systematic"``
    enumerates decision prefixes breadth-first up to ``max_depth``
    decision points, bounded by ``schedules`` runs — exhaustive when
    the bound is not hit.
    """
    invariants = tuple(invariants)
    failures: list[ScheduleResult] = []
    n_run = 0

    def note(result: ScheduleResult) -> None:
        if result.failed:
            failures.append(result)

    if mode == "random":
        for i in range(schedules):
            result = run_schedule(
                scenario_factory, seed=seed + i, invariants=invariants,
                settle_ticks=settle_ticks,
            )
            n_run += 1
            note(result)
    elif mode == "systematic":
        pending: list[tuple[int, ...]] = [()]
        visited: set[tuple[int, ...]] = set()
        while pending and n_run < schedules:
            prefix = pending.pop(0)
            if prefix in visited:
                continue
            visited.add(prefix)
            result = run_schedule(
                scenario_factory, seed=None, choices=prefix,
                invariants=invariants, settle_ticks=settle_ticks,
            )
            n_run += 1
            note(result)
            for pos in range(len(prefix), min(len(result.decisions),
                                              max_depth)):
                _idx, n_candidates = result.decisions[pos]
                for alt in range(1, n_candidates):
                    sibling = result.decisions[:pos]
                    pending.append(
                        tuple(i for i, _n in sibling) + (alt,)
                    )
    else:
        raise ValueError(f"mode must be 'random' or 'systematic', got {mode!r}")

    report = ExplorationReport(
        mode=mode, n_schedules=n_run, failures=failures
    )
    if failures:
        minimal = minimize_schedule(
            scenario_factory, failures[0], invariants=invariants
        )
        if minimal.failed:
            report.minimal_choices = minimal.choices
            report.minimal_trace = minimal.trace
    return report
