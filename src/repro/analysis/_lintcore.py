"""Shared plumbing for the source-level lints.

Two AST lints live in :mod:`repro.analysis`: the kernel lint
(:mod:`repro.analysis.lint`, rules KL001–KL003, over the simulated-GPU
kernels) and the async-hazard lint (:mod:`repro.analysis.asynclint`,
rules SL001–SL005, over the serve tier).  Both share one finding model,
one ``allow=`` pragma dialect, and one file/directory driver — this
module is that common engine, so a rule author writes only the rule.

The pragma dialect, pinned by ``tests/analysis/test_lintcore.py``::

    offending_line()  # <tag> allow=RULE1,RULE2 -- optional rationale
    offending_line()  # <tag> allow=ALL -- silences every rule

where ``<tag>`` is the lint's pragma tag (``kernel-lint:`` /
``serve-lint:``).  A pragma on the flagged line or on the enclosing
``def`` line silences the named rules for that site.
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator

__all__ = [
    "LintFinding",
    "pragma_allows",
    "iter_lint_files",
    "lint_paths_with",
    "run_lint_main",
    "walk_functions",
]


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at one source location."""

    path: str
    line: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"

    def to_json_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }


def pragma_allows(
    source_lines: list[str], lineno: int, rule: str, *, tag: str
) -> bool:
    """True if line ``lineno`` (1-based) carries an allow pragma for
    ``rule`` under the given pragma ``tag`` (e.g. ``"kernel-lint:"``)."""
    if not 1 <= lineno <= len(source_lines):
        return False
    line = source_lines[lineno - 1]
    if tag not in line:
        return False
    directive = line.split(tag, 1)[1]
    if "allow" not in directive:
        return False
    allowed = directive.split("allow", 1)[1].lstrip("=( ")
    rules = allowed.split("--")[0].replace(",", " ").split()
    cleaned = {r.strip(") ").upper() for r in rules}
    return rule.upper() in cleaned or "ALL" in cleaned


def walk_functions(
    tree: ast.Module,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every function definition in the module, sync and async alike."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def iter_lint_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files and directories into a sorted stream of ``*.py``."""
    for path in paths:
        p = Path(path)
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        else:
            yield p


def lint_paths_with(
    paths: Iterable[str | Path],
    lint_source: Callable[[str, str], list[LintFinding]],
) -> list[LintFinding]:
    """Run ``lint_source(source, path)`` over every file under ``paths``."""
    findings: list[LintFinding] = []
    for p in iter_lint_files(paths):
        findings.extend(lint_source(p.read_text(), str(p)))
    return findings


def run_lint_main(
    argv: list[str] | None,
    *,
    label: str,
    default_paths: Callable[[], list[Path]],
    lint_source: Callable[[str, str], list[LintFinding]],
) -> int:
    """The shared ``python -m repro.analysis.<lint>`` entry point."""
    args = sys.argv[1:] if argv is None else list(argv)
    targets: list[str | Path] = list(args) or list(default_paths())
    findings = lint_paths_with(targets, lint_source)
    for f in findings:
        print(f.format())
    n_files = sum(1 for _ in iter_lint_files(targets))
    if findings:
        print(f"{label}: {len(findings)} finding(s) in {n_files} file(s)")
        return 1
    print(f"{label}: clean ({n_files} file(s))")
    return 0
