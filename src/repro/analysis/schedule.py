"""Static schedule verifier: prove or refute deadlock-freedom per solver.

Every solver family in this repository pairs a *row-to-execution-unit
mapping* (one thread per row, one warp per row, per-level launches...)
with a *wait mechanism* (blocking busy-wait, productive poll, bounded
two-phase polling, inter-level barrier).  Whether that pair can deadlock
on a given matrix is a property of the dependency graph alone — it does
not require running the simulator.  This module decides it statically:

1. build the row-dependency edge set from the CSR arrays;
2. classify every edge against the solver's mapping — *cross-warp*
   (producer scheduled in a different warp) versus *intra-warp*, and by
   direction: an intra-warp edge is **backward** when the consumer waits
   on a row owned by an earlier lane of its own warp (the natural-order
   case, and the paper's Challenge 1 killer), **forward** when the
   producer sits on a later lane (only possible under permuted
   schedules).  Cross-warp edges are likewise split by grid admission
   order;
3. apply the solver family's progress argument to the classification,
   emitting :class:`~repro.analysis.hazards.Hazard` records where the
   argument fails and a certification note where it holds.

The verifier reproduces, ahead of time, exactly the behaviour the
simulator discovers the hard way: the naive thread-level kernel's
:class:`~repro.errors.DeadlockError` on any matrix with intra-warp
backward dependencies, and the safety of Two-Phase / Writing-First
Capellini (``tests/analysis/test_schedule_verifier.py`` property-tests
the agreement).  It also reports the level depth and the Eq. 1
granularity indicator, so one static pass yields everything ``repro
analyze`` needs for its verdict table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.granularity import parallel_granularity_from_stats
from repro.analysis.hazards import (
    ADMISSION_ORDER,
    INTRA_WARP_BLOCKING_SPIN,
    PHASE_BOUND_EXCEEDED,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Hazard,
)
from repro.analysis.levels import compute_levels
from repro.errors import SolverError
from repro.gpu.device import SIM_SMALL, DeviceSpec
from repro.sparse.csr import CSRMatrix

__all__ = [
    "SchedulePolicy",
    "EdgeClassification",
    "ScheduleReport",
    "SOLVER_POLICIES",
    "resolve_policy",
    "classify_edges",
    "max_intra_warp_chain",
    "verify_schedule",
    "verify_all",
    "render_verdict_table",
]

# ---------------------------------------------------------------------------
# policies
# ---------------------------------------------------------------------------

#: Wait mechanisms (the solver's means of consuming a dependency).
WAIT_BLOCKING_SPIN = "blocking-spin"
WAIT_POLL = "poll"
WAIT_TWO_PHASE = "two-phase"
WAIT_BARRIER = "barrier"
WAIT_NONE = "none"


@dataclass(frozen=True)
class SchedulePolicy:
    """The scheduling facts the verifier needs about one solver family.

    ``granularity`` is the row-to-unit mapping: ``"thread"`` maps row
    ``i`` to lane ``i % warp_size`` of warp ``i // warp_size``;
    ``"warp"`` gives row ``i`` a whole warp to itself; ``"level"`` runs
    one launch per level-set; ``"host"`` never touches the device.
    ``"thread/warp"`` is the adaptive fusion (each aligned row block
    chooses thread or warp mode, polls in thread mode).
    """

    key: str
    solver_name: str
    granularity: str  # "thread" | "warp" | "level" | "host" | "thread/warp"
    wait: str
    description: str


SOLVER_POLICIES: dict[str, SchedulePolicy] = {
    p.key: p
    for p in (
        SchedulePolicy(
            key="naive-thread",
            solver_name="NaiveThread",
            granularity="thread",
            wait=WAIT_BLOCKING_SPIN,
            description="one thread per row, blocking busy-wait on every "
            "off-diagonal flag (Section 3.3, Challenge 1)",
        ),
        SchedulePolicy(
            key="capellini",
            solver_name="Capellini",
            granularity="thread",
            wait=WAIT_POLL,
            description="Writing-First (Algorithm 5): productive polls only, "
            "threads publish the moment they reach the diagonal",
        ),
        SchedulePolicy(
            key="capellini-two-phase",
            solver_name="Capellini-TwoPhase",
            granularity="thread",
            wait=WAIT_TWO_PHASE,
            description="Two-Phase (Algorithm 4): blocking spin on cross-warp "
            "elements, bounded WARP_SIZE poll loop on intra-warp ones",
        ),
        SchedulePolicy(
            key="syncfree",
            solver_name="SyncFree",
            granularity="warp",
            wait=WAIT_BLOCKING_SPIN,
            description="one warp per row (Algorithm 3): every dependency is "
            "cross-warp by construction",
        ),
        SchedulePolicy(
            key="syncfree-csc",
            solver_name="SyncFree-CSC",
            granularity="warp",
            wait=WAIT_BLOCKING_SPIN,
            description="one warp per column, in-degree counters and atomic "
            "scatter (Liu et al. Euro-Par 2016)",
        ),
        SchedulePolicy(
            key="adaptive",
            solver_name="Adaptive",
            granularity="thread/warp",
            wait=WAIT_TWO_PHASE,
            description="Section 4.4 fusion: thread-mode blocks use polls, "
            "warp-mode rows own a whole warp",
        ),
        SchedulePolicy(
            key="levelset",
            solver_name="LevelSet",
            granularity="level",
            wait=WAIT_BARRIER,
            description="one launch per level-set (Algorithm 2): the barrier "
            "schedule admits no unresolved dependency",
        ),
        SchedulePolicy(
            key="serial",
            solver_name="Serial",
            granularity="host",
            wait=WAIT_NONE,
            description="host forward sweep (Algorithm 1)",
        ),
    )
}

#: Alternative spellings accepted by :func:`resolve_policy` (CLI names,
#: solver class display names, loose punctuation).
_POLICY_ALIASES = {
    "naivethread": "naive-thread",
    "naive": "naive-thread",
    "writingfirst": "capellini",
    "writing-first": "capellini",
    "capellinitwophase": "capellini-two-phase",
    "two-phase": "capellini-two-phase",
    "twophase": "capellini-two-phase",
    "syncfreecsc": "syncfree-csc",
    "level-set": "levelset",
}


def resolve_policy(solver: str) -> SchedulePolicy:
    """Look up a policy by key, solver display name, or loose alias."""
    raw = solver.strip()
    norm = raw.lower()
    if norm in SOLVER_POLICIES:
        return SOLVER_POLICIES[norm]
    squashed = norm.replace("_", "-")
    if squashed in SOLVER_POLICIES:
        return SOLVER_POLICIES[squashed]
    alias = _POLICY_ALIASES.get(squashed.replace("-", "")) or _POLICY_ALIASES.get(
        squashed
    )
    if alias:
        return SOLVER_POLICIES[alias]
    for policy in SOLVER_POLICIES.values():
        if policy.solver_name.lower() == norm:
            return policy
    raise SolverError(
        f"no schedule policy for solver {solver!r}; known: "
        f"{', '.join(sorted(SOLVER_POLICIES))}"
    )


# ---------------------------------------------------------------------------
# edge classification
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EdgeClassification:
    """Dependency edges split by scheduled placement (thread mapping).

    ``intra_warp_backward`` counts edges whose producer row is owned by
    an *earlier* lane of the consumer's own warp — the only kind a
    natural-order lower-triangular schedule produces, and the kind that
    stops a lock-step warp dead under a blocking busy-wait.
    ``intra_warp_forward`` (producer on a later lane) and
    ``cross_warp_backward`` (producer warp admitted after the consumer's)
    only arise under permuted schedules, passed via ``order``.
    """

    n_edges: int
    cross_warp_forward: int
    cross_warp_backward: int
    intra_warp_backward: int
    intra_warp_forward: int
    #: deepest chain of dependency edges confined to a single warp
    max_intra_warp_chain: int
    #: largest producer-after-consumer admission gap, in warps (0 if none)
    max_backward_warp_gap: int
    #: an example intra-warp edge ``(producer_row, consumer_row)`` or None
    sample_intra_warp_edge: tuple[int, int] | None = None

    @property
    def intra_warp(self) -> int:
        return self.intra_warp_backward + self.intra_warp_forward

    @property
    def cross_warp(self) -> int:
        return self.cross_warp_forward + self.cross_warp_backward


def _positions(n: int, order: np.ndarray | None) -> np.ndarray:
    """``pos[row]`` = grid position of the thread assigned to ``row``."""
    if order is None:
        return np.arange(n, dtype=np.int64)
    order = np.asarray(order, dtype=np.int64)
    if order.shape != (n,) or not np.array_equal(np.sort(order), np.arange(n)):
        raise ValueError("order must be a permutation of range(n_rows)")
    pos = np.empty(n, dtype=np.int64)
    pos[order] = np.arange(n, dtype=np.int64)
    return pos


def classify_edges(
    L: CSRMatrix,
    warp_size: int,
    *,
    order: np.ndarray | None = None,
) -> EdgeClassification:
    """Classify every dependency edge under the thread-level mapping.

    ``order`` optionally permutes the schedule: thread at grid position
    ``t`` handles row ``order[t]`` (``None`` = natural row order, the
    mapping every thread-level kernel in this repository uses).
    """
    if warp_size <= 0:
        raise ValueError(f"warp_size must be positive, got {warp_size}")
    n = L.n_rows
    rows = np.repeat(np.arange(n, dtype=np.int64), L.row_lengths())
    strict = L.col_idx < rows
    src = L.col_idx[strict]  # producer rows
    dst = rows[strict]       # consumer rows
    pos = _positions(n, order)
    psrc, pdst = pos[src], pos[dst]
    wsrc, wdst = psrc // warp_size, pdst // warp_size
    lsrc, ldst = psrc % warp_size, pdst % warp_size

    intra = wsrc == wdst
    intra_backward = intra & (lsrc < ldst)
    intra_forward = intra & (lsrc > ldst)
    cross_forward = wsrc < wdst
    cross_backward = wsrc > wdst

    sample = None
    hit = np.nonzero(intra)[0]
    if hit.size:
        k = int(hit[0])
        sample = (int(src[k]), int(dst[k]))

    gap = int((wsrc - wdst)[cross_backward].max()) if cross_backward.any() else 0
    return EdgeClassification(
        n_edges=int(strict.sum()),
        cross_warp_forward=int(cross_forward.sum()),
        cross_warp_backward=int(cross_backward.sum()),
        intra_warp_backward=int(intra_backward.sum()),
        intra_warp_forward=int(intra_forward.sum()),
        max_intra_warp_chain=max_intra_warp_chain(L, warp_size, order=order),
        max_backward_warp_gap=gap,
        sample_intra_warp_edge=sample,
    )


def max_intra_warp_chain(
    L: CSRMatrix,
    warp_size: int,
    *,
    order: np.ndarray | None = None,
) -> int:
    """Longest dependency chain confined to one warp (edge count).

    This is the quantity Algorithm 4's ``WARP_SIZE``-iteration outer
    loop must dominate: pass ``k`` of Two-Phase resolves the ``k``-th
    link of each warp's unresolved chain, so the bound is sound exactly
    when this depth is at most ``warp_size``.  Natural row order keeps
    it at most ``warp_size - 1`` by construction; the verifier still
    measures it so permuted schedules are checked, not assumed.
    """
    n = L.n_rows
    pos = _positions(n, order)
    row_ptr, col_idx = L.row_ptr, L.col_idx
    depth = np.zeros(n, dtype=np.int64)
    best = 0
    for i in range(n):
        cols = col_idx[row_ptr[i]: row_ptr[i + 1]]
        deps = cols[cols < i]
        if deps.size == 0:
            continue
        same = deps[pos[deps] // warp_size == pos[i] // warp_size]
        if same.size:
            depth[i] = int(depth[same].max()) + 1
            if depth[i] > best:
                best = int(depth[i])
    return best


# ---------------------------------------------------------------------------
# verification
# ---------------------------------------------------------------------------

VERDICT_SAFE = "SAFE"
VERDICT_DEADLOCK = "DEADLOCK"
VERDICT_AT_RISK = "AT-RISK"


@dataclass(frozen=True)
class ScheduleReport:
    """Static verdict for one (matrix, solver family, device) triple."""

    policy: SchedulePolicy
    warp_size: int
    edges: EdgeClassification
    hazards: tuple[Hazard, ...]
    certified: bool
    n_levels: int
    critical_path_len: int
    avg_rows_per_level: float
    granularity: float
    notes: tuple[str, ...] = field(default_factory=tuple)

    @property
    def verdict(self) -> str:
        if any(h.is_error for h in self.hazards):
            return VERDICT_DEADLOCK
        if self.hazards:
            return VERDICT_AT_RISK
        return VERDICT_SAFE

    def summary(self) -> str:
        return (
            f"{self.policy.solver_name}: {self.verdict} "
            f"({len(self.hazards)} hazard(s); "
            f"edges x-warp={self.edges.cross_warp} "
            f"intra-warp={self.edges.intra_warp}; "
            f"levels={self.n_levels}, granularity={self.granularity:.3f})"
        )


def verify_schedule(
    L: CSRMatrix,
    solver: str | SchedulePolicy = "capellini",
    *,
    device: DeviceSpec = SIM_SMALL,
    order: np.ndarray | None = None,
) -> ScheduleReport:
    """Statically verify one solver family's schedule on ``L``.

    Runs zero simulator cycles: the verdict is derived from the CSR
    dependency structure, the device's warp size / residency, and the
    solver family's progress argument.
    """
    policy = solver if isinstance(solver, SchedulePolicy) else resolve_policy(solver)
    ws = device.warp_size
    edges = classify_edges(L, ws, order=order)
    schedule = compute_levels(L)
    hazards: list[Hazard] = []
    notes: list[str] = []

    if policy.granularity == "host":
        notes.append("host execution: no device schedule to verify")
    elif policy.granularity == "level":
        notes.append(
            f"barrier schedule: {schedule.n_levels} level launches, every "
            "dependency resolved by a completed earlier launch"
        )
    elif policy.granularity == "warp":
        _verify_warp_level(L, device, hazards, notes)
    else:  # "thread" or "thread/warp"
        _verify_thread_level(policy, edges, device, hazards, notes)

    granularity = parallel_granularity_from_stats(
        schedule.avg_rows_per_level(), L.avg_nnz_per_row()
    ) if L.n_rows else 0.0

    return ScheduleReport(
        policy=policy,
        warp_size=ws,
        edges=edges,
        hazards=tuple(hazards),
        certified=not hazards,
        n_levels=schedule.n_levels,
        critical_path_len=max(schedule.n_levels - 1, 0),
        avg_rows_per_level=schedule.avg_rows_per_level(),
        granularity=granularity,
        notes=tuple(notes),
    )


def _verify_warp_level(
    L: CSRMatrix,
    device: DeviceSpec,
    hazards: list[Hazard],
    notes: list[str],
) -> None:
    """One warp per row/column: the blocking spin is provably safe.

    Under the warp-per-row mapping the producer of every strict edge
    ``j -> i`` (``j < i``) is warp ``j``, a *different, earlier* warp, so
    (a) no spin can capture its own producer and (b) grid-order
    admission places every producer no later than its consumer.  Both
    halves of the forward-progress argument hold for any lower
    triangular matrix — warp-level kernels are certified unconditionally.
    """
    del L, device
    notes.append(
        "warp-per-row mapping: every dependency is cross-warp and points "
        "at an earlier grid index; blocking spin safe under grid-order "
        "admission"
    )


def _verify_thread_level(
    policy: SchedulePolicy,
    edges: EdgeClassification,
    device: DeviceSpec,
    hazards: list[Hazard],
    notes: list[str],
) -> None:
    ws = device.warp_size
    capacity = device.resident_warp_capacity

    # -- admission order: polls and spins alike need producers admitted --
    if edges.cross_warp_backward:
        gap = edges.max_backward_warp_gap
        definite = gap >= capacity or policy.wait == WAIT_BLOCKING_SPIN
        hazards.append(
            Hazard(
                kind=ADMISSION_ORDER,
                severity=SEVERITY_ERROR if definite else SEVERITY_WARNING,
                message=(
                    f"{edges.cross_warp_backward} dependency edge(s) point at "
                    f"warps admitted later in grid order (max gap {gap} warps, "
                    f"device residency {capacity}); consumers can exhaust "
                    "residency before their producers are admitted"
                ),
            )
        )

    if policy.wait == WAIT_BLOCKING_SPIN:
        if edges.intra_warp:
            src, dst = edges.sample_intra_warp_edge
            hazards.append(
                Hazard(
                    kind=INTRA_WARP_BLOCKING_SPIN,
                    message=(
                        f"{edges.intra_warp} intra-warp dependency edge(s) "
                        f"({edges.intra_warp_backward} backward) under a "
                        "blocking busy-wait: the spinning lane stops the "
                        "lock-step warp that owns its producer, e.g. row "
                        f"{dst} waits on row {src} in the same warp "
                        "(paper Section 3.3, Challenge 1)"
                    ),
                    index=dst,
                    warp=dst // ws,
                    lane=dst % ws,
                )
            )
        else:
            notes.append(
                "no intra-warp dependencies at this warp size: the blocking "
                "spin only ever waits on other warps"
            )
    elif policy.wait == WAIT_TWO_PHASE:
        chain = edges.max_intra_warp_chain
        if edges.intra_warp_forward:
            hazards.append(
                Hazard(
                    kind=PHASE_BOUND_EXCEEDED,
                    message=(
                        f"{edges.intra_warp_forward} intra-warp edge(s) point "
                        "at later lanes; the Two-Phase pass argument assumes "
                        "lane order follows row order"
                    ),
                )
            )
        if chain > ws:
            hazards.append(
                Hazard(
                    kind=PHASE_BOUND_EXCEEDED,
                    message=(
                        f"intra-warp dependency chain depth {chain} exceeds "
                        f"the WARP_SIZE={ws} outer-loop bound of Algorithm 4: "
                        "a pass can end without resolving a new component"
                    ),
                )
            )
        else:
            notes.append(
                f"intra-warp chain depth {chain} <= WARP_SIZE={ws}: the "
                "bounded phase-2 poll loop of Algorithm 4 resolves at least "
                "one component per pass; phase-1 spins are cross-warp by "
                "construction"
            )
    elif policy.wait == WAIT_POLL:
        notes.append(
            "productive polls only: a failed poll never blocks the warp, so "
            "the minimal unsolved row's thread always advances (Writing-First "
            "progress argument, Section 4.3)"
        )
        if edges.intra_warp:
            notes.append(
                f"{edges.intra_warp} intra-warp edge(s) are resolved by "
                "repolling within the warp — correct, at extra poll traffic"
            )


def verify_all(
    L: CSRMatrix,
    *,
    device: DeviceSpec = SIM_SMALL,
    solvers: tuple[str, ...] | None = None,
    order: np.ndarray | None = None,
) -> list[ScheduleReport]:
    """Verify every registered solver family (or the given subset)."""
    keys = solvers if solvers is not None else tuple(SOLVER_POLICIES)
    return [
        verify_schedule(L, key, device=device, order=order) for key in keys
    ]


def render_verdict_table(
    reports: list[ScheduleReport], *, title: str = ""
) -> str:
    """Fixed-width per-solver verdict table for the CLI."""
    header = (
        f"{'solver':<20} {'verdict':<9} {'wait':<13} "
        f"{'x-warp':>8} {'iw-back':>8} {'iw-fwd':>7} {'chain':>6} "
        f"{'levels':>7} {'granularity':>12}"
    )
    lines = []
    if title:
        lines.append(title)
    lines.append(header)
    lines.append("-" * len(header))
    for r in reports:
        lines.append(
            f"{r.policy.solver_name:<20} {r.verdict:<9} {r.policy.wait:<13} "
            f"{r.edges.cross_warp:>8} {r.edges.intra_warp_backward:>8} "
            f"{r.edges.intra_warp_forward:>7} {r.edges.max_intra_warp_chain:>6} "
            f"{r.n_levels:>7} {r.granularity:>12.3f}"
        )
    for r in reports:
        for h in r.hazards:
            lines.append(f"  {r.policy.solver_name}: {h.format()}")
    return "\n".join(lines)
