"""AST-based async-hazard lint for the serve tier.

The kernel lint (:mod:`repro.analysis.lint`) enforces the sync-free
publication idiom on simulated-GPU kernels; this module applies the
same static-analysis discipline to the host-side concurrency code in
:mod:`repro.serve`.  The engine's coalescing/timeout/fallback logic is
a publish/observe protocol too — ``asyncio.Future`` is the flag,
shared engine state is the value — and the same classes of bugs
(stale reads, double publishes, lost wakeups) hide in it.  Five rules:

``SL001`` — stale read across an ``await``.
    A local variable bound from private mutable engine state
    (``self._pending``, ``self._depth``, ...) and then *used after* an
    ``await`` without being re-read.  Every ``await`` is a scheduling
    point: any other task may mutate the engine in between, so the
    cached value is stale.  Rebinding the local after the ``await``
    (revalidation) clears the finding.

``SL002`` — double publish on one future.
    ``set_result``/``set_exception`` reachable more than once on the
    same future — two unguarded publish sites on one root, or one
    unguarded publish inside a loop.  A second publish raises
    ``InvalidStateError`` at runtime, usually on the *losing* path of
    a race.  A publish lexically guarded by a ``done()`` test on the
    same root (``if not fut.done(): fut.set_result(...)``) is safe.

``SL003`` — lost wakeup: an exception path that never resolves.
    In a function that publishes to a future, an ``except`` handler
    that neither publishes, re-raises, nor propagates — while the
    publish it skipped lives in the guarded ``try`` body (or after a
    ``return`` in the handler).  The awaiting task sleeps forever.

``SL004`` — unbounded sleep-polling loop.
    A ``while`` loop whose only awaits are ``sleep`` calls is a
    busy-wait on shared state: it burns scheduler ticks, adds up to
    one poll interval of latency, and hides lost wakeups instead of
    surfacing them.  Wait on an ``asyncio.Event``/``Condition``/future
    instead.

``SL005`` — task created without a retained handle.
    ``asyncio.ensure_future(...)`` / ``create_task(...)`` as a bare
    expression statement.  The event loop keeps only a weak reference
    to running tasks: a handle-less task can be garbage-collected
    mid-flight, silently dropping the work (and any future it was
    going to resolve — a lost wakeup by GC).

Deliberate violations carry the same pragma dialect as the kernel
lint, under the ``serve-lint:`` tag::

    while self._spin:  # serve-lint: allow=SL004 -- demo polling loop
        await asyncio.sleep(0.01)

Run standalone (CI's ``serve-lint`` gate does)::

    python -m repro.analysis.asynclint src/repro/serve
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterable, Iterator, Optional

from repro.analysis._lintcore import (
    LintFinding,
    lint_paths_with,
    pragma_allows,
    run_lint_main,
    walk_functions,
)

__all__ = [
    "LintFinding",
    "lint_source",
    "lint_file",
    "lint_paths",
    "serve_package_paths",
    "main",
]

_PRAGMA = "serve-lint:"

#: Method names that resolve an ``asyncio.Future`` (publish the flag).
PUBLISH_METHODS = frozenset({"set_result", "set_exception"})
#: Call names that spawn a task whose handle must be retained.
SPAWN_METHODS = frozenset({"ensure_future", "create_task"})

_FuncDef = (ast.FunctionDef, ast.AsyncFunctionDef)


# ---------------------------------------------------------------------------
# expression helpers
# ---------------------------------------------------------------------------


def _dotted_root(node: ast.expr) -> Optional[str]:
    """Dotted path of a name/attribute chain: ``req.future`` ->
    ``"req.future"``, ``fut`` -> ``"fut"``; None for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _publish_call(node: ast.expr) -> Optional[tuple[str, ast.Call]]:
    """``(future_root, call)`` when ``node`` is ``<root>.set_result(...)``
    or ``<root>.set_exception(...)``."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in PUBLISH_METHODS
    ):
        root = _dotted_root(node.func.value)
        if root is not None:
            return root, node
    return None


def _is_private_self_read(node: ast.expr) -> bool:
    """``self._name`` — private mutable state of the enclosing object
    (public attributes are configuration, frozen after ``__init__``)."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr.startswith("_")
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def _is_sleep_call(node: ast.expr) -> bool:
    """``asyncio.sleep(...)``, ``clock.sleep(...)``, bare ``sleep(...)``."""
    if not isinstance(node, ast.Call):
        return False
    fn = node.func
    if isinstance(fn, ast.Attribute):
        return fn.attr == "sleep"
    return isinstance(fn, ast.Name) and fn.id == "sleep"


def _own_nodes(fn: ast.AST) -> Iterator[ast.AST]:
    """Nodes of ``fn`` excluding nested function definitions (each nested
    function is linted as its own scope)."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, _FuncDef):
            stack.extend(ast.iter_child_nodes(node))


def _enclosing_map(fn: ast.AST) -> dict[int, ast.AST]:
    """``id(child) -> parent`` for every node in ``fn``'s own scope."""
    parents: dict[int, ast.AST] = {}
    stack: list[ast.AST] = [fn]
    while stack:
        node = stack.pop()
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
            if not (isinstance(child, _FuncDef) and child is not fn):
                stack.append(child)
    return parents


def _ancestors(node: ast.AST, parents: dict[int, ast.AST]) -> Iterator[ast.AST]:
    while id(node) in parents:
        node = parents[id(node)]
        yield node


# ---------------------------------------------------------------------------
# rules (each takes one function scope)
# ---------------------------------------------------------------------------


def _check_sl001(fn, path, allowed) -> list[LintFinding]:
    """Stale read across await: local bound from ``self._x`` used after a
    later ``await`` without rebinding."""
    findings: list[LintFinding] = []
    # (lineno, name) for binds from private state; linenos of awaits;
    # (lineno, name) for every Name load; linenos of *any* rebinding
    binds: dict[str, list[int]] = {}
    rebinds: dict[str, list[int]] = {}
    awaits: list[int] = []
    loads: list[tuple[int, str]] = []
    for node in _own_nodes(fn):
        if isinstance(node, ast.Await):
            awaits.append(node.lineno)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = node.value
            if value is None:
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            tainted = any(
                _is_private_self_read(sub) for sub in ast.walk(value)
            )
            for t in targets:
                if isinstance(t, ast.Name):
                    rebinds.setdefault(t.id, []).append(node.lineno)
                    if tainted:
                        binds.setdefault(t.id, []).append(node.lineno)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            loads.append((node.lineno, node.id))
    if not awaits:
        return findings
    flagged: set[tuple[str, int]] = set()
    for lineno, name in sorted(loads):
        if name not in binds or (name, lineno) in flagged:
            continue
        last_bind = max(
            (ln for ln in rebinds.get(name, ()) if ln < lineno), default=None
        )
        if last_bind is None or last_bind not in binds[name]:
            continue  # most recent binding is not from shared state
        crossed = any(last_bind < aw < lineno for aw in awaits)
        if crossed and not allowed(lineno, "SL001"):
            flagged.add((name, lineno))
            findings.append(LintFinding(
                path, lineno, "SL001",
                f"{name!r} was read from shared engine state on line "
                f"{last_bind} and is used after an intervening await "
                "without revalidation: another task may have mutated the "
                "state at the scheduling point; re-read it after the await",
            ))
    return findings


def _guarded_by_done(
    call: ast.Call, root: str, parents: dict[int, ast.AST]
) -> bool:
    """A publish is guarded when an enclosing ``if``/``while`` test (or
    ternary) observes ``<root>.done()`` or ``<root>.cancelled()``."""
    for anc in _ancestors(call, parents):
        test = getattr(anc, "test", None)
        if test is None:
            continue
        for sub in ast.walk(test):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in ("done", "cancelled")
                and _dotted_root(sub.func.value) == root
            ):
                return True
    return False


def _check_sl002(fn, path, allowed) -> list[LintFinding]:
    """Double publish: two unguarded publish sites on one future root,
    or one unguarded publish inside a loop."""
    findings: list[LintFinding] = []
    parents = _enclosing_map(fn)
    sites: dict[str, list[tuple[ast.Call, bool, bool]]] = {}
    for node in _own_nodes(fn):
        pub = _publish_call(node)
        if pub is None:
            continue
        root, call = pub
        guarded = _guarded_by_done(call, root, parents)
        in_loop = any(
            isinstance(anc, (ast.For, ast.While, ast.AsyncFor))
            for anc in _ancestors(call, parents)
        )
        sites.setdefault(root, []).append((call, guarded, in_loop))
    for root, publishes in sites.items():
        unguarded = [
            (c, in_loop) for c, guarded, in_loop in publishes if not guarded
        ]
        reachable_twice = len(publishes) > 1 or any(
            in_loop for _, in_loop in unguarded
        )
        if not reachable_twice:
            continue
        for call, _ in unguarded:
            if allowed(call.lineno, "SL002"):
                continue
            findings.append(LintFinding(
                path, call.lineno, "SL002",
                f"publish on {root!r} is reachable more than once and this "
                "site is not guarded by a done() test: the second publish "
                "raises InvalidStateError on the losing path of the race; "
                f"guard with `if not {root}.done():`",
            ))
    return findings


def _check_sl003(fn, path, allowed) -> list[LintFinding]:
    """Lost wakeup: an except handler that swallows the exception while
    skipping the only publish of a future."""
    findings: list[LintFinding] = []
    publish_lines: list[int] = []
    for node in _own_nodes(fn):
        if _publish_call(node) is not None:
            publish_lines.append(node.lineno)
    if not publish_lines:
        return findings
    for node in _own_nodes(fn):
        if not isinstance(node, ast.Try):
            continue
        try_publishes = any(
            _publish_call(sub) is not None
            for stmt in node.body
            for sub in ast.walk(stmt)
        )
        for handler in node.handlers:
            body_nodes = [
                sub for stmt in handler.body for sub in ast.walk(stmt)
            ]
            h_publishes = any(_publish_call(s) is not None for s in body_nodes)
            h_raises = any(isinstance(s, ast.Raise) for s in body_nodes)
            h_returns = any(isinstance(s, ast.Return) for s in body_nodes)
            if h_publishes or h_raises:
                continue
            # swallowing is only a lost wakeup when the skipped publish
            # was inside the try body, or the handler returns past a
            # publish that follows the try
            later_publish = any(
                ln > handler.body[-1].lineno for ln in publish_lines
            )
            skips = try_publishes or (h_returns and later_publish)
            if not skips or allowed(handler.lineno, "SL003"):
                continue
            findings.append(LintFinding(
                path, handler.lineno, "SL003",
                "exception handler neither resolves the future nor "
                "re-raises: on this path the future is never published "
                "and its awaiter sleeps forever (lost wakeup); publish "
                "the exception with set_exception or re-raise",
            ))
    return findings


def _check_sl004(fn, path, allowed) -> list[LintFinding]:
    """Sleep-polling loop: a while whose awaits are all sleeps."""
    findings: list[LintFinding] = []
    for node in _own_nodes(fn):
        if not isinstance(node, ast.While):
            continue
        own_awaits = [
            sub
            for stmt in node.body
            for sub in ast.walk(stmt)
            if isinstance(sub, ast.Await)
        ]
        if not own_awaits:
            continue
        if all(_is_sleep_call(a.value) for a in own_awaits):
            lineno = node.lineno
            if allowed(lineno, "SL004"):
                continue
            findings.append(LintFinding(
                path, lineno, "SL004",
                "while-loop polls shared state with asyncio.sleep: this "
                "busy-wait burns scheduler ticks and adds up to one poll "
                "interval of latency per observation; wait on an "
                "asyncio.Event/Condition/future set by the producer "
                "instead",
            ))
    return findings


def _check_sl005(fn, path, allowed) -> list[LintFinding]:
    """Fire-and-forget task: spawn call whose handle is discarded."""
    findings: list[LintFinding] = []
    for node in _own_nodes(fn):
        if not isinstance(node, ast.Expr) or not isinstance(
            node.value, ast.Call
        ):
            continue
        call = node.value
        fname = (
            call.func.attr
            if isinstance(call.func, ast.Attribute)
            else call.func.id if isinstance(call.func, ast.Name) else None
        )
        if fname not in SPAWN_METHODS:
            continue
        lineno = node.lineno
        if allowed(lineno, "SL005"):
            continue
        findings.append(LintFinding(
            path, lineno, "SL005",
            f"{fname}(...) without retaining the task handle: the event "
            "loop holds only a weak reference, so the task can be "
            "garbage-collected mid-flight and its work silently dropped; "
            "store the handle (e.g. in a set with a done-callback "
            "discard) or await it",
        ))
    return findings


_RULES = (_check_sl001, _check_sl002, _check_sl003, _check_sl004, _check_sl005)


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------


def lint_source(source: str, path: str = "<string>") -> list[LintFinding]:
    tree = ast.parse(source)
    lines = source.splitlines()
    findings: list[LintFinding] = []
    for fn in walk_functions(tree):

        def allowed(lineno: int, rule: str) -> bool:
            return pragma_allows(lines, lineno, rule, tag=_PRAGMA) or (
                pragma_allows(lines, fn.lineno, rule, tag=_PRAGMA)
            )

        for rule in _RULES:
            findings.extend(rule(fn, path, allowed))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def lint_file(path: str | Path) -> list[LintFinding]:
    p = Path(path)
    return lint_source(p.read_text(), str(p))


def lint_paths(paths: Iterable[str | Path]) -> list[LintFinding]:
    return lint_paths_with(paths, lint_source)


def serve_package_paths() -> list[Path]:
    """The ``repro.serve`` source files (the default lint target)."""
    import repro.serve as pkg

    return sorted(Path(pkg.__file__).parent.glob("*.py"))


def main(argv: list[str] | None = None) -> int:
    return run_lint_main(
        argv,
        label="serve lint",
        default_paths=serve_package_paths,
        lint_source=lint_source,
    )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
