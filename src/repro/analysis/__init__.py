"""Dependency analysis for sparse triangular systems.

This package implements the concepts of Section 2.1 of the paper:
components, dependencies, the dependency DAG, and level-sets — plus the
paper's own contribution on the analysis side, the *parallel granularity*
indicator of Section 3.2 (Equation 1).

It also hosts the kernel hazard analyzer (see ``docs/analysis.md``):

* :mod:`repro.analysis.schedule` — static deadlock/schedule verifier
  (classifies row dependencies against the warp mapping and proves or
  refutes deadlock-freedom per solver family, with zero simulated cycles);
* :mod:`repro.analysis.sanitize` — opt-in dynamic sanitizers observing
  every simulated memory access (memory-order, race, uninitialized-read,
  double-publish);
* :mod:`repro.analysis.lint` — AST lint for kernel sources
  (fence-before-flag, divergent blocking spins, load ordering);
* :mod:`repro.analysis.asynclint` — AST lint for the asyncio serve
  tier (stale reads across awaits, double publishes, lost wakeups,
  sleep-polling loops, dropped task handles), sharing the finding
  model and ``allow=`` pragma dialect via
  :mod:`repro.analysis._lintcore`;
* :mod:`repro.analysis.interleave` — deterministic interleaving
  explorer: virtual clock, deferred executor, seeded replayable
  schedule search with minimal-failure shrinking (the dynamic
  counterpart of the async lint);
* :mod:`repro.analysis.hazards` — the shared hazard taxonomy.
"""

from repro.analysis.levels import LevelSchedule, compute_levels
from repro.analysis.dag import dependency_dag, dependency_edge_count, critical_path
from repro.analysis.granularity import (
    GranularityParams,
    parallel_granularity,
    parallel_granularity_from_stats,
)
from repro.analysis.features import MatrixFeatures, extract_features
from repro.analysis.reorder import (
    apply_inverse_permutation,
    permute_symmetric,
    reorder_by_levels,
    reorder_reverse_cuthill_mckee,
)
from repro.analysis.hazards import Hazard
from repro.analysis.schedule import (
    EdgeClassification,
    SchedulePolicy,
    ScheduleReport,
    classify_edges,
    render_verdict_table,
    resolve_policy,
    verify_all,
    verify_schedule,
)
from repro.analysis.sanitize import DEFAULT_PROTOCOLS, PublishProtocol, Sanitizer

__all__ = [
    "LevelSchedule",
    "compute_levels",
    "dependency_dag",
    "dependency_edge_count",
    "critical_path",
    "GranularityParams",
    "parallel_granularity",
    "parallel_granularity_from_stats",
    "MatrixFeatures",
    "extract_features",
    "apply_inverse_permutation",
    "permute_symmetric",
    "reorder_by_levels",
    "reorder_reverse_cuthill_mckee",
    "Hazard",
    "EdgeClassification",
    "SchedulePolicy",
    "ScheduleReport",
    "classify_edges",
    "render_verdict_table",
    "resolve_policy",
    "verify_all",
    "verify_schedule",
    "DEFAULT_PROTOCOLS",
    "PublishProtocol",
    "Sanitizer",
]
