"""Dependency analysis for sparse triangular systems.

This package implements the concepts of Section 2.1 of the paper:
components, dependencies, the dependency DAG, and level-sets — plus the
paper's own contribution on the analysis side, the *parallel granularity*
indicator of Section 3.2 (Equation 1).
"""

from repro.analysis.levels import LevelSchedule, compute_levels
from repro.analysis.dag import dependency_dag, dependency_edge_count, critical_path
from repro.analysis.granularity import (
    GranularityParams,
    parallel_granularity,
    parallel_granularity_from_stats,
)
from repro.analysis.features import MatrixFeatures, extract_features
from repro.analysis.reorder import (
    apply_inverse_permutation,
    permute_symmetric,
    reorder_by_levels,
    reorder_reverse_cuthill_mckee,
)

__all__ = [
    "LevelSchedule",
    "compute_levels",
    "dependency_dag",
    "dependency_edge_count",
    "critical_path",
    "GranularityParams",
    "parallel_granularity",
    "parallel_granularity_from_stats",
    "MatrixFeatures",
    "extract_features",
    "apply_inverse_permutation",
    "permute_symmetric",
    "reorder_by_levels",
    "reorder_reverse_cuthill_mckee",
]
