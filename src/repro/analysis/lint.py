"""AST-based lint for simulated-GPU kernel generators.

The kernels under :mod:`repro.solvers` share one idiom for sync-free
publication, and this linter enforces it *lexically*, before any test
runs.  A *kernel* is any generator function taking a ``ctx``
(:class:`~repro.gpu.kernel.ThreadCtx`) parameter.  Three rules:

``KL001`` — fence-before-flag-store.
    Every ``ctx.store(GET_VALUE, ...)`` (or any flag-array store) must be
    lexically dominated by a ``ctx.threadfence()`` that itself follows
    the matching value store: value store → fence → flag store, in
    source order.

``KL002`` — no blocking spin in a divergent intra-warp context.
    A ``yield SpinWait(...)`` is only clean when the kernel provably
    waits on *other* warps: either the row is warp-uniform (derived from
    ``ctx.warp_id`` and untainted by ``ctx.lane_id`` /
    ``ctx.global_id`` — warp-level kernels), or the spin is lexically
    preceded, in its innermost loop, by a cross-warp guard — a
    conditional ``break``/``continue``/``return`` comparing against a
    variable whose name mentions ``warp`` (the ``warp_begin`` idiom of
    Algorithm 4 phase 1).  Anything else is the paper's Challenge-1
    deadlock shape.

``KL003`` — flag-load-before-x-load.
    In a kernel that uses the flag protocol, every ``ctx.load(X, idx)``
    must be lexically preceded by a flag observation (``SpinWait`` /
    ``Poll`` / ``ctx.load(GET_VALUE, ...)``) on an index with the same
    root variable.

Deliberate violations (the Challenge-1 demo kernel) carry a pragma on
the offending line or the enclosing ``def``::

    yield SpinWait(...)  # kernel-lint: allow=KL002 -- deliberate deadlock demo

Run standalone (CI does)::

    python -m repro.analysis.lint src/repro/solvers
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.analysis._lintcore import (
    LintFinding,
    lint_paths_with,
    pragma_allows,
    run_lint_main,
)

__all__ = [
    "LintFinding",
    "lint_source",
    "lint_file",
    "lint_paths",
    "solver_package_paths",
    "main",
]

#: Names recognized as flag (synchronization) arrays in store/load/wait
#: calls — matched against ``_sim.GET_VALUE`` attributes, bare constants,
#: and string literals alike.
FLAG_NAMES = frozenset({"GET_VALUE", "get_value", "COUNTER", "counter"})
#: Names recognized as guarded value arrays.
VALUE_NAMES = frozenset({"X", "x", "LEFT_SUM", "left_sum"})

_PRAGMA = "kernel-lint:"


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _array_token(node: ast.expr) -> str | None:
    """The array a kernel call names: ``_sim.GET_VALUE`` / ``X`` / ``"x"``."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _is_ctx_call(node: ast.expr, method: str) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == method
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id == "ctx"
    )


def _wait_call(node: ast.expr) -> ast.Call | None:
    """``SpinWait(...)`` / ``Poll(...)`` constructor calls."""
    if isinstance(node, ast.Call):
        fn = node.func
        name = fn.id if isinstance(fn, ast.Name) else (
            fn.attr if isinstance(fn, ast.Attribute) else None
        )
        if name in ("SpinWait", "Poll"):
            return node
    return None


def _root_name(node: ast.expr) -> str | None:
    """First variable name inside an index expression (``col * k + r`` →
    ``col``), used to match a value load to its guarding flag wait."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            return sub.id
    return None


def _names_in(node: ast.expr) -> set[str]:
    return {sub.id for sub in ast.walk(node) if isinstance(sub, ast.Name)}


def _ctx_attrs_in(node: ast.expr) -> set[str]:
    return {
        sub.attr
        for sub in ast.walk(node)
        if isinstance(sub, ast.Attribute)
        and isinstance(sub.value, ast.Name)
        and sub.value.id == "ctx"
    }


def _pragma_allows(source_lines: list[str], lineno: int, rule: str) -> bool:
    """True if line ``lineno`` (1-based) carries an allow pragma for rule."""
    return pragma_allows(source_lines, lineno, rule, tag=_PRAGMA)


# ---------------------------------------------------------------------------
# kernel discovery and statement walking
# ---------------------------------------------------------------------------


def _is_kernel(fn: ast.FunctionDef) -> bool:
    """A generator function with a ``ctx`` parameter is a kernel."""
    args = fn.args
    names = [a.arg for a in args.args + args.posonlyargs + args.kwonlyargs]
    if "ctx" not in names:
        return False
    for node in ast.walk(fn):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
    return False


def _kernels(tree: ast.Module) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and _is_kernel(node):
            yield node


@dataclass(frozen=True)
class _Stmt:
    """One statement with its lexical path (chain of enclosing blocks)."""

    node: ast.stmt
    path: tuple[tuple[ast.stmt, str], ...]  # (enclosing stmt, block field)


def _walk_stmts(
    body: list[ast.stmt],
    path: tuple[tuple[ast.stmt, str], ...] = (),
) -> Iterator[_Stmt]:
    """Statements in source order, annotated with their block path."""
    for stmt in body:
        yield _Stmt(stmt, path)
        for fieldname in ("body", "orelse", "finalbody"):
            sub = getattr(stmt, fieldname, None)
            if sub and not isinstance(stmt, ast.FunctionDef):
                yield from _walk_stmts(sub, path + ((stmt, fieldname),))


def _visible_before(
    stmts: list[_Stmt], target: _Stmt
) -> list[ast.stmt]:
    """Statements lexically visible at ``target``: statements on the path
    from the function root to ``target`` that precede it, excluding
    sibling branches (an ``if`` arm never sees the other arm)."""
    target_blocks = {(id(b), f) for b, f in target.path}
    out = []
    for s in stmts:
        if s.node is target.node:
            break
        # visible iff every enclosing block of s also encloses the target
        # (matched as (statement, field) pairs: the `body` of an `if` does
        # not see statements from its `orelse`, and vice versa)
        if all((id(b), f) in target_blocks for b, f in s.path):
            if s.node.lineno <= target.node.lineno:
                out.append(s.node)
    return out


# ---------------------------------------------------------------------------
# taint: warp-uniform vs lane-varying values
# ---------------------------------------------------------------------------

_LANE_SOURCES = frozenset({"lane_id", "global_id"})
_WARP_SOURCES = frozenset({"warp_id"})


def _taint(visible: list[ast.stmt]) -> tuple[set[str], set[str]]:
    """(warp_tainted, lane_tainted) variable names over visible assigns."""
    warp: set[str] = set()
    lane: set[str] = set()
    for stmt in visible:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AugAssign):
            targets, value = [stmt.target], stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            continue
        attrs = _ctx_attrs_in(value)
        names = _names_in(value)
        is_warp = bool(attrs & _WARP_SOURCES) or bool(names & warp)
        is_lane = bool(attrs & _LANE_SOURCES) or bool(names & lane)
        for t in targets:
            if isinstance(t, ast.Name):
                if is_warp:
                    warp.add(t.id)
                if is_lane:
                    lane.add(t.id)
                if not is_warp and not is_lane:
                    warp.discard(t.id)
                    lane.discard(t.id)
    return warp, lane


def _has_warp_uniform_row(visible: list[ast.stmt]) -> bool:
    """True if a row-pointer load indexes a warp-uniform, lane-invariant
    variable — the warp-owns-this-row signature of warp-level kernels."""
    warp, lane = _taint(visible)
    for stmt in visible:
        for node in ast.walk(stmt):
            if not _is_ctx_call(node, "load") or not node.args:
                continue
            token = _array_token(node.args[0]) or ""
            if not token.lower().endswith("ptr"):
                continue
            if len(node.args) < 2:
                continue
            idx_names = _names_in(node.args[1])
            if idx_names and idx_names <= warp and not (idx_names & lane):
                return True
            # direct ctx.load(ROW_PTR, ctx.warp_id)
            if _ctx_attrs_in(node.args[1]) & _WARP_SOURCES:
                return True
    return False


def _has_cross_warp_guard(target: _Stmt) -> bool:
    """A lexically earlier ``if ...warp...: break/continue/return`` in the
    innermost loop (or any enclosing block) guards the spin cross-warp."""
    for block, fieldname in reversed(target.path):
        for sibling in getattr(block, fieldname):
            if sibling.lineno >= target.node.lineno:
                break
            if not isinstance(sibling, ast.If):
                continue
            exits = any(
                isinstance(s, (ast.Break, ast.Continue, ast.Return))
                for s in sibling.body
            )
            if not exits:
                continue
            if any("warp" in name.lower() for name in _names_in(sibling.test)):
                return True
    return False


# ---------------------------------------------------------------------------
# rules
# ---------------------------------------------------------------------------


def _own_exprs(stmt: ast.stmt) -> Iterator[ast.expr]:
    """Expression nodes attached to ``stmt`` itself, not to statements
    nested inside its blocks (those are visited as their own ``_Stmt``)."""
    for _field, value in ast.iter_fields(stmt):
        if isinstance(value, ast.expr):
            yield from ast.walk(value)
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, ast.expr):
                    yield from ast.walk(item)


def _check_kernel(
    fn: ast.FunctionDef, path: str, source_lines: list[str]
) -> list[LintFinding]:
    findings: list[LintFinding] = []
    stmts = list(_walk_stmts(fn.body))

    uses_flags = any(
        _array_token(node) in FLAG_NAMES
        for s in stmts
        for node in _own_exprs(s.node)
        if isinstance(node, (ast.Attribute, ast.Name, ast.Constant))
    )

    def allowed(lineno: int, rule: str) -> bool:
        return _pragma_allows(source_lines, lineno, rule) or _pragma_allows(
            source_lines, fn.lineno, rule
        )

    # ---- KL001: value store -> fence -> flag store, in source order ----
    events: list[tuple[int, str]] = []  # (lineno, kind)
    for s in stmts:
        for node in _own_exprs(s.node):
            if _is_ctx_call(node, "threadfence"):
                events.append((node.lineno, "fence"))
            elif _is_ctx_call(node, "store") and node.args:
                token = _array_token(node.args[0])
                if token in FLAG_NAMES:
                    events.append((node.lineno, "flag"))
                elif token in VALUE_NAMES:
                    events.append((node.lineno, "value"))
            elif _is_ctx_call(node, "atomic_add") and node.args:
                token = _array_token(node.args[0])
                if token in FLAG_NAMES:
                    events.append((node.lineno, "flag"))
                elif token in VALUE_NAMES:
                    events.append((node.lineno, "value"))
    events.sort()
    for lineno, kind in events:
        if kind != "flag" or allowed(lineno, "KL001"):
            continue
        last_value = max(
            (ln for ln, k in events if k == "value" and ln < lineno), default=None
        )
        last_fence = max(
            (ln for ln, k in events if k == "fence" and ln < lineno), default=None
        )
        if last_fence is None:
            findings.append(LintFinding(
                path, lineno, "KL001",
                "flag store is not dominated by a ctx.threadfence()",
            ))
        elif last_value is None:
            findings.append(LintFinding(
                path, lineno, "KL001",
                "flag store has no preceding value store to publish",
            ))
        elif last_fence < last_value:
            findings.append(LintFinding(
                path, lineno, "KL001",
                "threadfence precedes the value store: the fence must "
                "separate the value store from the flag store",
            ))

    # ---- KL002: blocking spins must be provably cross-warp -------------
    for s in stmts:
        for expr in _own_exprs(s.node):
            if not isinstance(expr, ast.Yield) or expr.value is None:
                continue
            wait = _wait_call(expr.value)
            if wait is None or not isinstance(wait.func, ast.Name):
                continue
            if wait.func.id != "SpinWait":
                continue
            lineno = expr.lineno
            if allowed(lineno, "KL002"):
                continue
            visible = _visible_before(stmts, s)
            if _has_warp_uniform_row(visible):
                continue  # warp-level kernel: every wait is cross-warp
            if _has_cross_warp_guard(s):
                continue  # Algorithm 4 phase-1 idiom
            findings.append(LintFinding(
                path, lineno, "KL002",
                "blocking SpinWait in a lane-divergent context without a "
                "cross-warp guard: an intra-warp producer deadlocks the "
                "lock-step warp (Challenge 1); poll instead, or break on "
                "a warp-boundary test first",
            ))

    # ---- KL003: value loads must follow a flag observation -------------
    if uses_flags:
        flag_roots_by_line: list[tuple[int, str | None]] = []
        for s in stmts:
            for node in _own_exprs(s.node):
                wait = _wait_call(node)
                if wait is not None and wait.args and (
                    _array_token(wait.args[0]) in FLAG_NAMES
                ):
                    flag_roots_by_line.append(
                        (node.lineno, _root_name(wait.args[1]))
                        if len(wait.args) > 1
                        else (node.lineno, None)
                    )
                elif _is_ctx_call(node, "load") and node.args and (
                    _array_token(node.args[0]) in FLAG_NAMES
                ):
                    idx = node.args[1] if len(node.args) > 1 else None
                    flag_roots_by_line.append(
                        (node.lineno, _root_name(idx) if idx is not None else None)
                    )
        for s in stmts:
            for node in _own_exprs(s.node):
                if not _is_ctx_call(node, "load") or len(node.args) < 2:
                    continue
                if _array_token(node.args[0]) not in VALUE_NAMES:
                    continue
                lineno = node.lineno
                if allowed(lineno, "KL003"):
                    continue
                # strided layouts index the value as e.g. ``col * k + r``
                # while the flag wait is on ``col``: the load is guarded
                # when the wait's root variable appears anywhere in the
                # value load's index expression
                idx_names = _names_in(node.args[1])
                guarded = any(
                    ln <= lineno
                    and (r is None or not idx_names or r in idx_names)
                    for ln, r in flag_roots_by_line
                )
                if not guarded:
                    root = _root_name(node.args[1])
                    findings.append(LintFinding(
                        path, lineno, "KL003",
                        f"load of a guarded value indexed by {root!r} is not "
                        "preceded by a flag wait/load on the same index: "
                        "consumers must observe the flag before the value",
                    ))

    return findings


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------


def lint_source(source: str, path: str = "<string>") -> list[LintFinding]:
    tree = ast.parse(source)
    lines = source.splitlines()
    findings: list[LintFinding] = []
    for fn in _kernels(tree):
        findings.extend(_check_kernel(fn, path, lines))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def lint_file(path: str | Path) -> list[LintFinding]:
    p = Path(path)
    return lint_source(p.read_text(), str(p))


def lint_paths(paths: Iterable[str | Path]) -> list[LintFinding]:
    return lint_paths_with(paths, lint_source)


def solver_package_paths() -> list[Path]:
    """The ``repro.solvers`` source files (the default lint target)."""
    import repro.solvers as pkg

    return sorted(Path(pkg.__file__).parent.glob("*.py"))


def main(argv: list[str] | None = None) -> int:
    return run_lint_main(
        argv,
        label="kernel lint",
        default_paths=solver_package_paths,
        lint_source=lint_source,
    )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
