"""Shared plumbing for solvers that run on the SIMT simulator."""

from __future__ import annotations

import os
from contextlib import contextmanager
from contextvars import ContextVar

import numpy as np

from repro.errors import SolverError
from repro.gpu.device import DeviceSpec
from repro.gpu.simt import SIMTEngine
from repro.sparse.csr import CSRMatrix

__all__ = [
    "make_engine",
    "alloc_system",
    "assert_all_solved",
    "instrumentation_active",
    "tracing",
    "sanitizing",
]

# ``repro.obs.profiling`` is the third ambient-attachment context: every
# engine built here also picks up the active cycle profiler (imported
# lazily inside make_engine to keep solver import time flat).

#: Tracer picked up by every engine created while a `tracing` block is
#: active (lets callers trace a solve without touching solver APIs).
_ACTIVE_TRACER: ContextVar = ContextVar("repro_active_tracer", default=None)


@contextmanager
def tracing(tracer):
    """Attach ``tracer`` to every engine built inside the block.

    >>> from repro.gpu.trace import Tracer, render_timeline
    >>> tracer = Tracer()
    >>> with tracing(tracer):
    ...     solver.solve(L, b, device=SIM_TINY)    # doctest: +SKIP
    >>> print(render_timeline(tracer))             # doctest: +SKIP
    """
    token = _ACTIVE_TRACER.set(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE_TRACER.reset(token)


#: Sanitizer picked up by every engine created while a `sanitizing` block
#: is active (see :mod:`repro.analysis.sanitize`).
_ACTIVE_SANITIZER: ContextVar = ContextVar("repro_active_sanitizer", default=None)


@contextmanager
def sanitizing(sanitizer=None):
    """Attach a dynamic sanitizer to every engine built inside the block.

    >>> from repro.analysis.sanitize import Sanitizer
    >>> san = Sanitizer(mode="record")
    >>> with sanitizing(san):
    ...     solver.solve(L, b, device=SIM_TINY)    # doctest: +SKIP
    >>> san.summary()                              # doctest: +SKIP
    {}
    """
    if sanitizer is None:
        from repro.analysis.sanitize import Sanitizer

        sanitizer = Sanitizer()
    token = _ACTIVE_SANITIZER.set(sanitizer)
    try:
        yield sanitizer
    finally:
        _ACTIVE_SANITIZER.reset(token)


def instrumentation_active() -> bool:
    """True when an ambient tracer, sanitizer, or cycle profiler would
    attach to the next simulated launch.

    The serving layer uses this to force the simulator lane: cycle-level
    attribution only exists when the kernel actually runs on the
    simulator, so a host fast-path solve would silently produce an empty
    trace/profile.  A wall-clock host profiler
    (:class:`repro.obs.hostprof.HostProfiler`, ``kind == "host"``) does
    NOT count — the host lane serves it itself.
    """
    if _ACTIVE_TRACER.get() is not None or _ACTIVE_SANITIZER.get() is not None:
        return True
    from repro.obs.profiler import active_profiler

    profiler = active_profiler()
    return profiler is not None and getattr(profiler, "kind", "sim") == "sim"


def _env_sanitizer():
    """Fresh sanitizer when ``REPRO_SANITIZE=1`` is exported (opt-in CI
    hardening: the whole solver suite runs under the dynamic checks)."""
    if os.environ.get("REPRO_SANITIZE", "") not in ("", "0"):
        from repro.analysis.sanitize import Sanitizer

        return Sanitizer()
    return None


#: Memory array names shared by every SpTRSV kernel in this package.
ROW_PTR = "row_ptr"
COL_IDX = "col_idx"
VALUES = "values"
RHS = "b"
X = "x"
GET_VALUE = "get_value"


def make_engine(device: DeviceSpec, *, max_cycles: int | None = None) -> SIMTEngine:
    """One fresh engine per solve (counters and memory start clean)."""
    if max_cycles is None:
        engine = SIMTEngine(device)
    else:
        engine = SIMTEngine(device, max_cycles=max_cycles)
    engine.tracer = _ACTIVE_TRACER.get()
    from repro.obs.profiler import active_profiler

    profiler = active_profiler()
    # a host-lane (wall-clock) profiler has no cycle hooks; never hand
    # it to a simulated engine
    if profiler is not None and getattr(profiler, "kind", "sim") != "sim":
        profiler = None
    engine.profiler = profiler
    sanitizer = _ACTIVE_SANITIZER.get()
    if sanitizer is None:
        sanitizer = _env_sanitizer()
    if sanitizer is not None:
        if engine.tracer is None:
            # hazard reports carry a timeline tail; give them one
            from repro.gpu.trace import Tracer

            engine.tracer = Tracer()
        sanitizer.tracer = engine.tracer
        engine.sanitizer = sanitizer
    return engine


def alloc_system(
    engine: SIMTEngine,
    L: CSRMatrix,
    b: np.ndarray,
    *,
    with_flags: bool = True,
) -> None:
    """Place the CSR arrays, RHS, solution vector and flag array in device
    memory under the conventional names."""
    mem = engine.memory
    mem.alloc(ROW_PTR, L.row_ptr)
    mem.alloc(COL_IDX, L.col_idx)
    mem.alloc(VALUES, L.values)
    mem.alloc(RHS, np.array(b, dtype=np.float64, copy=True))
    mem.alloc(X, np.zeros(L.n_rows, dtype=np.float64))
    if with_flags:
        # one byte per row, as in the reference CUDA implementations
        mem.alloc(GET_VALUE, np.zeros(L.n_rows, dtype=np.int8), flags=True)


def assert_all_solved(engine: SIMTEngine, n_rows: int, solver_name: str) -> None:
    """Post-launch invariant: every component published its flag.

    Guards the Two-Phase bound (Algorithm 4's ``WARP_SIZE`` outer loop is
    *assumed* sufficient; if it ever were not, the kernel would exit with
    unsolved rows and this check turns that into a loud error instead of
    a silently wrong solution).
    """
    flags = engine.memory.array(GET_VALUE)
    unsolved = np.nonzero(flags[:n_rows] == 0)[0]
    if unsolved.size:
        raise SolverError(
            f"{solver_name}: {unsolved.size} component(s) left unsolved "
            f"(first: row {int(unsolved[0])})"
        )
