"""Warp-level synchronization-free SpTRSV (Algorithm 3; Liu et al. [20]).

One warp solves one component: lanes stride over the row's off-diagonal
elements, each busy-waiting (blocking spin) until the element's producer
flag is up, then the warp tree-reduces the partial sums in shared memory
and lane 0 publishes the component.  Dependencies always point to earlier
*rows* — other warps — so the blocking spin is deadlock-free, which is
precisely why this design is stuck at warp granularity: moving to one
thread per row would move producers into the spinning warp itself
(Section 3.3, Challenge 1; see :mod:`repro.solvers.naive_thread`).

The paper's baseline operates on CSC; Algorithm 3 as printed (and this
implementation) indexes CSR arrays, with the format-conversion cost the
CSC variant would impose charged to preprocessing per Section 2.3.
"""

from __future__ import annotations

import time

import numpy as np

from repro.gpu.device import DeviceSpec
from repro.gpu.kernel import ALU, WARP_SYNC, SpinWait, ThreadCtx
from repro.perfmodel.calibration import preprocessing_model_ms
from repro.solvers import _sim
from repro.solvers.base import PreprocessInfo, SolveResult, SpTRSVSolver
from repro.sparse.csr import CSRMatrix

__all__ = ["SyncFreeSolver"]


class SyncFreeSolver(SpTRSVSolver):
    """Warp-level SyncFree SpTRSV on the SIMT simulator."""

    name = "SyncFree"
    storage_format = "CSC"
    preprocessing_overhead = "low"
    requires_synchronization = False
    processing_granularity = "warp"

    def _solve(
        self, L: CSRMatrix, b: np.ndarray, device: DeviceSpec
    ) -> SolveResult:
        m = L.n_rows
        ws = device.warp_size
        t0 = time.perf_counter()
        engine = _sim.make_engine(device)
        _sim.alloc_system(engine, L, b)
        prep_host = time.perf_counter() - t0

        def kernel(ctx: ThreadCtx):
            # Algorithm 3: one concurrent warp per component.
            i = ctx.warp_id
            if i >= m:
                return
            lane = ctx.lane_id
            lo = int(ctx.load(_sim.ROW_PTR, i))
            hi = int(ctx.load(_sim.ROW_PTR, i + 1))
            yield ALU  # row bounds + address setup

            # lines 7-12: strided accumulation with busy-wait per element
            acc = 0.0
            j = lo + lane
            while j < hi - 1:
                col = int(ctx.load(_sim.COL_IDX, j))
                yield ALU
                yield SpinWait(_sim.GET_VALUE, col, 1)  # lines 10-11
                acc += ctx.load(_sim.VALUES, j) * ctx.load(_sim.X, col)
                yield ALU  # line 12
                j += ctx.warp_size

            # line 13: stage the partial sum in shared memory
            ctx.shared_write(lane, acc)
            yield WARP_SYNC

            # lines 14-17: tree reduction over the warp
            # tree reduction; the start width is the next power of two
            # half so non-power-of-two warp sizes (e.g. the paper's
            # 3-thread Figure 2 device) reduce correctly
            add_len = 1
            while add_len * 2 < ctx.warp_size:
                add_len *= 2
            while add_len > 0:
                if lane < add_len and lane + add_len < ctx.warp_size:
                    ctx.shared_write(
                        lane,
                        ctx.shared_read(lane) + ctx.shared_read(lane + add_len),
                    )
                yield WARP_SYNC
                add_len //= 2

            # lines 18-22: lane 0 publishes the component
            if lane == 0:
                bi = ctx.load(_sim.RHS, i)
                diag = ctx.load(_sim.VALUES, hi - 1)
                xi = (bi - ctx.shared_read(0)) / diag
                ctx.store(_sim.X, i, xi)
                yield ALU
                ctx.threadfence()
                yield ALU
                ctx.store(_sim.GET_VALUE, i, 1)
                yield ALU

        stats = engine.launch(kernel, m * ws, shared_per_warp=ws)
        _sim.assert_all_solved(engine, m, self.name)
        return SolveResult(
            x=engine.memory.array(_sim.X).copy(),
            solver_name=self.name,
            exec_ms=device.cycles_to_ms(stats.cycles),
            preprocess=PreprocessInfo(
                description="flag-array malloc/memset (+ CSC conversion "
                "charged per Section 2.3)",
                modeled_ms=preprocessing_model_ms(
                    "syncfree", n_rows=m, nnz=L.nnz
                ),
                host_seconds=prep_host,
            ),
            stats=stats,
            device=device,
        )
