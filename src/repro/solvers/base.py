"""Solver interface shared by host-reference and simulated-GPU solvers."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import SolverError
from repro.gpu.counters import KernelStats
from repro.gpu.device import DeviceSpec, SIM_SMALL
from repro.sparse.csr import CSRMatrix
from repro.sparse.triangular import check_solvable

__all__ = ["PreprocessInfo", "SolveResult", "SpTRSVSolver", "sptrsv_flops"]


def sptrsv_flops(L: CSRMatrix) -> int:
    """Floating-point operations of one SpTRSV on ``L``.

    One multiply+add per off-diagonal element and one subtract+divide per
    row: with the diagonal stored that is ``2 * nnz`` — the convention the
    paper's GFLOPS figures use.
    """
    return 2 * L.nnz


@dataclass(frozen=True)
class PreprocessInfo:
    """What a solver did before its first solve of a given matrix.

    ``modeled_ms`` is the calibrated cost on the *target platform* (what
    Table 1 reports); ``host_seconds`` is the wall time this Python
    implementation actually took (reported for transparency, never used
    in paper-comparison tables).
    """

    description: str
    modeled_ms: float = 0.0
    host_seconds: float = 0.0


@dataclass(frozen=True)
class SolveResult:
    """Outcome of one SpTRSV solve."""

    x: np.ndarray
    solver_name: str
    exec_ms: float
    preprocess: PreprocessInfo
    stats: KernelStats | None = None
    device: DeviceSpec | None = None
    extra: dict[str, Any] = field(default_factory=dict)

    def gflops(self, L: CSRMatrix) -> float:
        """Achieved GFLOPS/s of the execution phase (paper convention)."""
        if self.exec_ms <= 0:
            raise SolverError("execution time is zero; GFLOPS undefined")
        return sptrsv_flops(L) / (self.exec_ms * 1e6)

    def bandwidth_gbps(self) -> float:
        """Achieved DRAM bandwidth (Figure 7 metric); 0 when no stats."""
        if self.stats is None or self.exec_ms <= 0:
            return 0.0
        return self.stats.dram_bytes / (self.exec_ms * 1e6)


class SpTRSVSolver(abc.ABC):
    """Abstract SpTRSV solver.

    Class attributes mirror the paper's Table 2 taxonomy so the table can
    be generated from the implementations themselves.
    """

    #: Display name ("Capellini", "SyncFree", ...).
    name: str = "abstract"
    #: Sparse storage format the algorithm consumes natively.
    storage_format: str = "CSR"
    #: "none" | "low" | "high" — Table 2's preprocessing overhead column.
    preprocessing_overhead: str = "none"
    #: Whether inter-level synchronization is required (Table 2).
    requires_synchronization: bool = False
    #: "thread" | "warp" | "thread/warp" | "unknown" (Table 2).
    processing_granularity: str = "thread"

    def solve(
        self,
        L: CSRMatrix,
        b: np.ndarray,
        *,
        device: DeviceSpec = SIM_SMALL,
    ) -> SolveResult:
        """Solve ``L x = b``.

        Validates the system (square, lower triangular, explicit nonzero
        diagonal last in each row), then dispatches to the concrete
        implementation.
        """
        check_solvable(L)
        b = np.asarray(b, dtype=np.float64)
        if b.shape != (L.n_rows,):
            raise SolverError(
                f"b has shape {b.shape}, expected ({L.n_rows},)"
            )
        return self._solve(L, b, device)

    @abc.abstractmethod
    def _solve(
        self, L: CSRMatrix, b: np.ndarray, device: DeviceSpec
    ) -> SolveResult:
        """Concrete solve; inputs are already validated."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
