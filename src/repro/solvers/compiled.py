"""Compiled execution lane: a fused, synchronization-free solve loop.

The host fast lane (:mod:`repro.solvers.host_parallel`) executes one
gather + segmented-sum + scatter per *level*, so deep skinny level
structures — the paper's high-granularity regime — pay interpreter
overhead thousands of times per solve.  This module removes that
overhead on two independent axes, following the two halves of the fix
in the literature:

* **Kernel side** (Li, arXiv:1710.04985): the whole level loop is fused
  into *one* call.  Every plan row is first rewritten as a pure linear
  functional over a stacked workspace ``W = [X; B]`` of shape
  ``(2n, k)``::

      x_i = sum_e vals[e] * W[idx[e]]

  with the diagonal division folded into the coefficients (off-diagonal
  dependency ``j`` contributes ``-L[i,j]/L[i,i]`` on input ``j``; the
  right-hand side contributes ``1/L[i,i]`` on input ``n + i``).  Every
  row therefore owns at least one coefficient — there are no empty
  segments, no separate diagonal divide, and no branch in the executor.
  Because plan order is topological, a single flat loop over plan rows
  is correct without any level barrier; when numba is installed that
  loop JIT-compiles to one GIL-releasing native call
  (``@njit(nogil=True)``).  Without numba a pure-numpy fused executor
  (one gather + one ``np.add.reduceat`` + one scatter per *executed
  level*) keeps the lane present and correct.

* **Schedule side** (Böhnlein et al., arXiv:2503.05408): the builder
  accepts ``schedule="merged"`` and materializes the numeric
  substitution recorded by :func:`repro.analysis.levels.merge_levels` —
  adjacent skinny levels coalesce into one executed step, with the few
  cross-level dependencies replaced by the dependent rows' own
  expansions.  A bounded amount of redundant arithmetic buys an order
  of magnitude fewer interpreter iterations, which is exactly what the
  numpy fallback needs on a 10k-level chain.

``HAVE_NUMBA`` reports whether the JIT backend is importable; nothing
in this module requires it.  The profiled path (ambient
:class:`~repro.obs.hostprof.HostProfiler`) always runs the per-level
numpy executor so each step's wall time can be attributed to
gather/reduce/scatter — results stay bit-identical because the numpy
path and the flat loop evaluate the same coefficient lists in the same
row order.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.analysis.granularity import HIGH_GRANULARITY_THRESHOLD
from repro.analysis.levels import (
    DEFAULT_MERGE_BUDGET,
    DEFAULT_MERGE_MAX_GROUP,
    DEFAULT_MERGE_MAX_WIDTH,
    LevelSchedule,
    MergedSchedule,
    compute_levels,
    merge_levels,
)
from repro.errors import SolverError
from repro.gpu.device import DeviceSpec
from repro.obs.hostprof import HostLaunchProfile, active_host_profiler
from repro.solvers.base import PreprocessInfo, SolveResult, SpTRSVSolver
from repro.sparse.csr import CSRMatrix
from repro.sparse.triangular import check_solvable

__all__ = [
    "COMPILED_SCHEDULES",
    "DEEP_LEVEL_COUNT",
    "HAVE_NUMBA",
    "CompiledPlan",
    "CompiledFusedSolver",
    "build_compiled_plan",
    "prefers_compiled",
]

#: Valid values of the plan builder's ``schedule`` knob.
COMPILED_SCHEDULES = ("level", "merged")

#: Level-count floor for the ``auto`` lane policy: below this, the host
#: lane's per-level overhead is already negligible and the compiled lane
#: buys nothing worth a second cached plan artifact.
DEEP_LEVEL_COUNT = 64

try:  # pragma: no cover - exercised via the with-numba CI leg
    import numba as _numba  # noqa: F401

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the container default
    _numba = None
    HAVE_NUMBA = False

_kernel = None
_kernel_lock = threading.Lock()


def _fused_kernel():
    """The lazily JIT-compiled flat-loop executor, or ``None``.

    Compiled once per process, under a lock (the first call from the
    serve tier's worker threads must not race numba's own compilation
    machinery).  Returns ``None`` when numba is not installed.
    """
    global _kernel
    if not HAVE_NUMBA:
        return None
    if _kernel is None:
        with _kernel_lock:
            if _kernel is None:
                from numba import njit

                @njit(cache=False, nogil=True)
                def kernel(rows, row_ptr, idx, vals, W):  # pragma: no cover
                    k = W.shape[1]
                    acc = np.empty(k, dtype=np.float64)
                    for p in range(rows.shape[0]):
                        for c in range(k):
                            acc[c] = 0.0
                        for e in range(row_ptr[p], row_ptr[p + 1]):
                            w = vals[e]
                            src = idx[e]
                            for c in range(k):
                                acc[c] += w * W[src, c]
                        r = rows[p]
                        for c in range(k):
                            W[r, c] = acc[c]

                _kernel = kernel
    return _kernel


def prefers_compiled(features) -> bool:
    """The ``auto`` lane rule: deep *and* skinny.

    True when the level structure is deep (``n_levels`` at or beyond
    :data:`DEEP_LEVEL_COUNT`) and the Eq. 1 granularity indicator is at
    or below the paper's 0.7 threshold — the regime where per-level
    dispatch overhead dominates and level widths are too small to
    amortize it.  Wide-shallow matrices stay on the host lane, whose
    big per-level numpy operations are already near-optimal there.
    """
    return (
        features.n_levels >= DEEP_LEVEL_COUNT
        and features.granularity <= HIGH_GRANULARITY_THRESHOLD
    )


@dataclass(frozen=True)
class CompiledPlan:
    """Inspector output for the compiled lane: scaled functional form.

    Attributes
    ----------
    schedule:
        The base (unmerged) level schedule.
    merged:
        The :class:`~repro.analysis.levels.MergedSchedule` the plan was
        expanded against, or ``None`` for ``schedule="level"``.
    rows:
        Plan-row → original-row map (= ``schedule.order``).
    row_ptr:
        Coefficient spans: plan row ``p`` owns
        ``idx[row_ptr[p]:row_ptr[p+1]]`` / ``vals[...]``.  Never empty —
        every row carries at least its ``b`` coefficient.
    idx, vals:
        Workspace inputs and pre-scaled coefficients.  ``idx[e] < n``
        addresses an already-solved ``x`` entry, ``idx[e] >= n``
        addresses ``b[idx[e] - n]`` in the stacked ``(2n, k)``
        workspace.
    level_ptr:
        Plan-row spans per *executed* level (merged groups count as one
        level); the numpy fallback iterates these, the numba kernel
        ignores them entirely.
    """

    schedule: LevelSchedule
    merged: MergedSchedule | None
    rows: np.ndarray
    row_ptr: np.ndarray
    idx: np.ndarray
    vals: np.ndarray
    level_ptr: np.ndarray

    def __post_init__(self) -> None:
        # per-level executor steps, fully vectorized: reduceat segment
        # starts for level k are row_ptr[r0:r1] - e0, taken as views of
        # one globally rebased array (every row is nonempty by
        # construction, so no masking is ever needed)
        widths = np.diff(self.level_ptr)
        e_at = self.row_ptr[self.level_ptr]
        rel = self.row_ptr[:-1] - np.repeat(e_at[:-1], widths)
        lp = self.level_ptr.tolist()
        ea = e_at.tolist()
        steps = tuple(
            (lp[k], lp[k + 1], ea[k], ea[k + 1], rel[lp[k]: lp[k + 1]])
            for k in range(len(lp) - 1)
        )
        object.__setattr__(self, "_rel", rel)
        object.__setattr__(self, "_steps", steps)

    @property
    def n_rows(self) -> int:
        return len(self.rows)

    @property
    def n_levels(self) -> int:
        """Executed steps (merged groups count once)."""
        return len(self.level_ptr) - 1

    @property
    def base_levels(self) -> int:
        """Levels of the unmerged schedule."""
        return self.schedule.n_levels

    @property
    def coeff_nnz(self) -> int:
        """Stored coefficients (``nnz(L)`` plus any redundant work)."""
        return len(self.idx)

    @property
    def redundant_nnz(self) -> int:
        """Coefficients duplicated by level merging (0 when unmerged)."""
        return self.merged.redundant_nnz if self.merged is not None else 0

    @property
    def schedule_variant(self) -> str:
        """The ``schedule`` knob this plan was built with."""
        return "merged" if self.merged is not None else "level"

    @property
    def backend(self) -> str:
        """Which executor an unprofiled solve will use."""
        return "numba" if HAVE_NUMBA else "numpy"

    @property
    def nbytes(self) -> int:
        """Resident bytes of the plan-owned arrays (registry budget)."""
        return (
            self.rows.nbytes
            + self.row_ptr.nbytes
            + self.idx.nbytes
            + self.vals.nbytes
            + self.level_ptr.nbytes
            + self._rel.nbytes
        )

    # ------------------------------------------------------------------
    # executors
    # ------------------------------------------------------------------
    def solve(self, b: np.ndarray, *, force_fallback: bool = False) -> np.ndarray:
        """Fused solve, single RHS."""
        b = np.asarray(b, dtype=np.float64)
        if b.ndim != 1 or b.shape[0] != self.n_rows:
            raise SolverError(
                f"b has shape {b.shape}, expected ({self.n_rows},)"
            )
        return self.solve_many(
            b.reshape(-1, 1), force_fallback=force_fallback
        )[:, 0]

    def solve_many(
        self, B: np.ndarray, *, force_fallback: bool = False
    ) -> np.ndarray:
        """Fused solve of ``L X = B`` for all columns.

        Accepts 1-D ``b`` (promoted to one column), float32, and
        non-contiguous / Fortran-ordered inputs, mirroring
        :meth:`~repro.solvers.host_parallel.ExecutionPlan.solve_many`;
        always returns a fresh ``(n, k)`` float64 array.

        ``force_fallback=True`` runs the pure-numpy fused executor even
        when numba is installed — the numba-absent code path, testable
        on any machine.
        """
        B = np.asarray(B, dtype=np.float64)
        if B.ndim == 1:
            B = B.reshape(-1, 1)
        if B.ndim != 2 or B.shape[0] != self.n_rows:
            raise SolverError(
                f"B must have shape ({self.n_rows}, k), got {B.shape}"
            )
        if B.shape[1] == 0:
            raise SolverError("B must have at least one right-hand side")
        n, k = B.shape
        # stacked workspace: W[:n] is X (indexed by original row),
        # W[n:] is B; the copy into W also normalizes layout/dtype
        W = np.empty((2 * n, k), dtype=np.float64)
        W[n:] = B
        profiler = active_host_profiler()
        if profiler is not None:
            return self._execute_profiled(W, profiler)
        kernel = None if force_fallback else _fused_kernel()
        if kernel is not None:
            kernel(self.rows, self.row_ptr, self.idx, self.vals, W)
            return W[:n].copy()
        X = W[:n]
        rows, idx, vals = self.rows, self.idx, self.vals
        for r0, r1, e0, e1, starts in self._steps:
            contrib = vals[e0:e1, None] * W[idx[e0:e1]]
            X[rows[r0:r1]] = np.add.reduceat(contrib, starts, axis=0)
        return X.copy()

    def _execute_profiled(self, W: np.ndarray, profiler) -> np.ndarray:
        """Per-level numpy executor with wall-clock phase attribution.

        Same coefficient lists, same row order, same numpy reduction as
        the unprofiled fallback — bit-identical output; the clock is
        only read *around* the numpy segments.  The numba kernel is
        never used here: one fused native call has no per-level
        boundaries to attribute.
        """
        clock = time.perf_counter
        n = self.n_rows
        k = W.shape[1]
        X = W[:n]
        rows, idx, vals = self.rows, self.idx, self.vals
        raw: list[tuple] = []
        t_launch = clock()
        for r0, r1, e0, e1, starts in self._steps:
            t0 = clock()
            contrib = vals[e0:e1, None] * W[idx[e0:e1]]
            t1 = clock()
            sums = np.add.reduceat(contrib, starts, axis=0)
            t2 = clock()
            X[rows[r0:r1]] = sums
            t3 = clock()
            raw.append((r1 - r0, e1 - e0, t1 - t0, t2 - t1, t3 - t2))
        wall_s = clock() - t_launch
        profiler.record(
            HostLaunchProfile(
                n_rows=n,
                n_rhs=k,
                n_levels=self.n_levels,
                nnz=self.coeff_nnz,
                wall_s=wall_s,
                raw=tuple(raw),
            )
        )
        return X.copy()


def build_compiled_plan(
    L: CSRMatrix,
    *,
    schedule: str = "merged",
    base: LevelSchedule | None = None,
    max_width: int = DEFAULT_MERGE_MAX_WIDTH,
    budget: float = DEFAULT_MERGE_BUDGET,
    max_group: int = DEFAULT_MERGE_MAX_GROUP,
) -> CompiledPlan:
    """Inspector for the compiled lane.

    Rewrites every row into the scaled functional form (coefficients
    pre-divided by the diagonal, the right-hand side an explicit input)
    and, for ``schedule="merged"``, materializes the numeric
    substitution of :func:`~repro.analysis.levels.merge_levels` so each
    merged group executes as one step.  ``base`` may be supplied when
    the caller already level-scheduled the matrix (the registry reuses
    its cached schedule artifact).
    """
    if schedule not in COMPILED_SCHEDULES:
        raise ValueError(
            f"schedule must be one of {COMPILED_SCHEDULES}, got {schedule!r}"
        )
    check_solvable(L)
    if base is None:
        base = compute_levels(L)
    n = L.n_rows
    order = base.order

    # direct scaled form, fully vectorized (mirrors build_plan's gather
    # arithmetic): plan row p holds its off-diagonal dependencies then
    # one trailing b coefficient
    off_lo = L.row_ptr[:-1]
    dep_counts = (L.row_ptr[1:] - 1 - off_lo).astype(np.int64)[order]
    inv_d = 1.0 / L.values[L.row_ptr[1:] - 1][order]

    row_ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(dep_counts + 1, out=row_ptr[1:])
    dep_ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(dep_counts, out=dep_ptr[1:])
    total_dep = int(dep_ptr[-1])

    src_rel = np.arange(total_dep, dtype=np.int64) - np.repeat(
        dep_ptr[:-1], dep_counts
    )
    src = np.repeat(off_lo[order], dep_counts) + src_rel
    dep_pos = np.repeat(row_ptr[:-1], dep_counts) + src_rel
    b_pos = row_ptr[1:] - 1

    idx = np.empty(total_dep + n, dtype=np.int64)
    vals = np.empty(total_dep + n, dtype=np.float64)
    idx[dep_pos] = L.col_idx[src]
    vals[dep_pos] = -L.values[src] * np.repeat(inv_d, dep_counts)
    idx[b_pos] = n + order
    vals[b_pos] = inv_d

    merged: MergedSchedule | None = None
    level_ptr = base.level_ptr
    if schedule == "merged":
        merged = merge_levels(
            L,
            base,
            max_width=max_width,
            budget=budget,
            max_group=max_group,
        )
        level_ptr = merged.level_ptr
        if merged.n_levels < base.n_levels:
            idx, vals, row_ptr = _expand_groups(
                base, merged, idx, vals, row_ptr
            )
            assert len(idx) == merged.expanded_nnz

    return CompiledPlan(
        schedule=base,
        merged=merged,
        rows=order.copy(),
        row_ptr=row_ptr,
        idx=idx,
        vals=vals,
        level_ptr=level_ptr.copy(),
    )


def _expand_groups(
    base: LevelSchedule,
    merged: MergedSchedule,
    idx: np.ndarray,
    vals: np.ndarray,
    row_ptr: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Numeric substitution pass over the merged groups.

    Replays the grouping recorded in ``merged``: inside each multi-level
    group, a dependency on an in-group row is replaced by that row's own
    (already expanded) coefficient list, scaled by the dependency's
    coefficient.  Inputs are emitted in sorted order, so the expansion
    is deterministic and its support matches the structural counts of
    :func:`~repro.analysis.levels.merge_levels` exactly.  Singleton
    groups — including every wide level — are copied through untouched.
    """
    n = base.n_rows
    order = base.order
    group_ptr = merged.group_ptr
    base_lp = base.level_ptr

    counts = np.empty(n, dtype=np.int64)
    idx_parts: list[np.ndarray] = []
    vals_parts: list[np.ndarray] = []
    for g in range(merged.n_levels):
        l0, l1 = int(group_ptr[g]), int(group_ptr[g + 1])
        p0, p1 = int(base_lp[l0]), int(base_lp[l1])
        if l1 - l0 == 1:
            e0, e1 = int(row_ptr[p0]), int(row_ptr[p1])
            idx_parts.append(idx[e0:e1])
            vals_parts.append(vals[e0:e1])
            counts[p0:p1] = np.diff(row_ptr[p0: p1 + 1])
            continue
        # plan order within the group is already topological: any
        # in-group dependency sits at an earlier base level, hence at an
        # earlier plan row, hence already in `exp`
        exp: dict[int, dict[int, float]] = {}
        for p in range(p0, p1):
            terms: dict[int, float] = {}
            for e in range(int(row_ptr[p]), int(row_ptr[p + 1])):
                q = int(idx[e])
                w = float(vals[e])
                sub = exp.get(q)
                if sub is None:
                    terms[q] = terms.get(q, 0.0) + w
                else:
                    for q2, w2 in sub.items():
                        terms[q2] = terms.get(q2, 0.0) + w * w2
            exp[int(order[p])] = terms
            inputs = sorted(terms)
            counts[p] = len(inputs)
            idx_parts.append(np.asarray(inputs, dtype=np.int64))
            vals_parts.append(
                np.asarray([terms[q] for q in inputs], dtype=np.float64)
            )

    new_row_ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=new_row_ptr[1:])
    if not idx_parts:
        return idx[:0], vals[:0], new_row_ptr
    return (
        np.concatenate(idx_parts),
        np.concatenate(vals_parts),
        new_row_ptr,
    )


class CompiledFusedSolver(SpTRSVSolver):
    """The compiled lane behind the standard solver interface.

    Plans are cached per (matrix content fingerprint, schedule variant)
    behind a small LRU, mirroring
    :class:`~repro.solvers.host_parallel.HostLevelScheduleSolver`; the
    two schedule variants of one matrix are distinct artifacts with
    different coefficient arrays.
    """

    name = "CompiledFused"
    storage_format = "CSR"
    preprocessing_overhead = "high"
    requires_synchronization = False
    processing_granularity = "vector"

    def __init__(
        self,
        *,
        schedule: str = "merged",
        plan_cache_size: int = 8,
    ) -> None:
        if schedule not in COMPILED_SCHEDULES:
            raise ValueError(
                f"schedule must be one of {COMPILED_SCHEDULES}, "
                f"got {schedule!r}"
            )
        if plan_cache_size <= 0:
            raise ValueError("plan_cache_size must be positive")
        self.schedule = schedule
        self.plan_cache_size = plan_cache_size
        self._plan_cache: "OrderedDict[tuple, CompiledPlan]" = OrderedDict()

    def plan_for(self, L: CSRMatrix) -> CompiledPlan:
        """The (cached) compiled plan for ``L``, keyed by content."""
        key = (L.content_fingerprint(), self.schedule)
        plan = self._plan_cache.get(key)
        if plan is None:
            plan = build_compiled_plan(L, schedule=self.schedule)
            self._plan_cache[key] = plan
            while len(self._plan_cache) > self.plan_cache_size:
                self._plan_cache.popitem(last=False)
        else:
            self._plan_cache.move_to_end(key)
        return plan

    def _solve(
        self, L: CSRMatrix, b: np.ndarray, device: DeviceSpec
    ) -> SolveResult:
        t0 = time.perf_counter()
        plan = self.plan_for(L)
        prep = time.perf_counter() - t0
        t1 = time.perf_counter()
        x = plan.solve(b)
        dt = time.perf_counter() - t1
        return SolveResult(
            x=x,
            solver_name=self.name,
            exec_ms=dt * 1e3,
            preprocess=PreprocessInfo(
                description="inspector: scaled functional rewrite + level "
                "merging (cached across solves of the same matrix)",
                host_seconds=prep,
            ),
            extra={
                "n_levels": plan.n_levels,
                "base_levels": plan.base_levels,
                "schedule": plan.schedule_variant,
                "backend": plan.backend,
                "redundant_nnz": plan.redundant_nnz,
            },
        )
