"""CapelliniSpTRSV: thread-level synchronization-free solvers.

Two variants, exactly as the paper develops them:

* :class:`TwoPhaseCapelliniSolver` — Algorithm 4.  Phase 1 busy-waits
  (blocking spin) on components produced *outside* the thread's warp;
  phase 2 consumes intra-warp dependencies with a bounded
  ``WARP_SIZE``-iteration loop of productive polls, which cannot deadlock
  because every pass resolves at least one component of the warp.
* :class:`WritingFirstCapelliniSolver` — Algorithm 5, the optimized
  control flow.  No phase split: each thread repeatedly polls the flag of
  its current element, accumulating whenever the flag is up and publishing
  its component the moment it reaches the diagonal — threads "write first"
  without waiting for warp-mates (Section 4.3).

Neither needs preprocessing; both read CSR directly.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.device import DeviceSpec
from repro.gpu.kernel import ALU, WARP_SYNC, Poll, SpinWait, ThreadCtx
from repro.solvers import _sim
from repro.solvers.base import PreprocessInfo, SolveResult, SpTRSVSolver
from repro.sparse.csr import CSRMatrix

__all__ = ["TwoPhaseCapelliniSolver", "WritingFirstCapelliniSolver"]

_NO_PREPROCESSING = PreprocessInfo(
    description="none (Capellini requires no preprocessing)", modeled_ms=0.0
)


class TwoPhaseCapelliniSolver(SpTRSVSolver):
    """Algorithm 4: Two-Phase CapelliniSpTRSV."""

    name = "Capellini-TwoPhase"
    storage_format = "CSR"
    preprocessing_overhead = "none"
    requires_synchronization = False
    processing_granularity = "thread"

    def _solve(
        self, L: CSRMatrix, b: np.ndarray, device: DeviceSpec
    ) -> SolveResult:
        m = L.n_rows
        ws = device.warp_size
        engine = _sim.make_engine(device)
        _sim.alloc_system(engine, L, b)

        def kernel(ctx: ThreadCtx):
            # one thread per component, natural row order (line 3)
            i = ctx.global_id
            if i >= m:
                return
            warp_begin = (i // ws) * ws  # line 4
            lo = int(ctx.load(_sim.ROW_PTR, i))
            hi = int(ctx.load(_sim.ROW_PTR, i + 1))
            yield ALU

            left_sum = 0.0
            j = lo
            # ---- Phase 1 (lines 6-13): elements produced outside this
            # warp; classic busy-wait is safe for them.
            while j < hi:
                col = int(ctx.load(_sim.COL_IDX, j))
                yield ALU
                if col >= warp_begin:
                    break  # line 13: first intra-warp (or diagonal) element
                yield SpinWait(_sim.GET_VALUE, col, 1)  # lines 9-10
                left_sum += ctx.load(_sim.VALUES, j) * ctx.load(_sim.X, col)
                yield ALU  # line 11
                j += 1
            else:  # pragma: no cover - diagonal guarantees the break
                return

            # ---- Phase 2 (lines 14-25): bounded WARP_SIZE-iteration loop
            # over the remaining, possibly intra-warp-dependent elements.
            # The phases are separated by the warp-wide reconvergence of
            # the divergent phase-1 loop ("the premise of starting the
            # second phase is that all threads in the same warp have
            # finished ... [phase 1]", Section 4.3) — and each outer pass
            # is itself a uniform, warp-synchronous loop iteration.  Both
            # convergence points are what makes the WARP_SIZE bound sound:
            # in pass k the k-th unresolved lane's dependencies are all
            # published, so it consumes them within that same pass.
            yield WARP_SYNC
            solved = False
            for _k in range(ws):  # line 14
                # lines 15-18: consume every element whose flag is up
                while True:
                    flag = ctx.load(_sim.GET_VALUE, col)
                    yield ALU
                    if flag != 1:
                        break
                    left_sum += ctx.load(_sim.VALUES, j) * ctx.load(_sim.X, col)
                    yield ALU
                    j += 1
                    col = int(ctx.load(_sim.COL_IDX, j))
                # lines 19-25: last-element check
                if col == i:
                    bi = ctx.load(_sim.RHS, i)
                    diag = ctx.load(_sim.VALUES, hi - 1)
                    ctx.store(_sim.X, i, (bi - left_sum) / diag)
                    yield ALU
                    ctx.threadfence()
                    yield ALU
                    ctx.store(_sim.GET_VALUE, i, 1)
                    yield ALU
                    solved = True
                    break
                yield WARP_SYNC  # uniform outer loop: passes reconverge
            # If the WARP_SIZE bound were ever insufficient the component
            # would be left unsolved; _sim.assert_all_solved turns that
            # into a loud SolverError after the launch.
            del solved

        stats = engine.launch(kernel, _grid_threads(m, ws))
        _sim.assert_all_solved(engine, m, self.name)
        return SolveResult(
            x=engine.memory.array(_sim.X).copy(),
            solver_name=self.name,
            exec_ms=device.cycles_to_ms(stats.cycles),
            preprocess=_NO_PREPROCESSING,
            stats=stats,
            device=device,
        )


class WritingFirstCapelliniSolver(SpTRSVSolver):
    """Algorithm 5: Writing-First CapelliniSpTRSV (the paper's headline)."""

    name = "Capellini"
    storage_format = "CSR"
    preprocessing_overhead = "none"
    requires_synchronization = False
    processing_granularity = "thread"

    def _solve(
        self, L: CSRMatrix, b: np.ndarray, device: DeviceSpec
    ) -> SolveResult:
        m = L.n_rows
        ws = device.warp_size
        engine = _sim.make_engine(device)
        _sim.alloc_system(engine, L, b)

        def kernel(ctx: ThreadCtx):
            # one thread per component, natural row order (line 3)
            i = ctx.global_id
            if i >= m:
                return
            lo = int(ctx.load(_sim.ROW_PTR, i))
            hi = int(ctx.load(_sim.ROW_PTR, i + 1))
            yield ALU

            left_sum = 0.0
            j = lo
            col = int(ctx.load(_sim.COL_IDX, j))
            yield ALU
            while True:  # line 6
                if col == i:
                    # lines 12-18: the diagonal — write first, immediately
                    bi = ctx.load(_sim.RHS, i)
                    diag = ctx.load(_sim.VALUES, hi - 1)
                    ctx.store(_sim.X, i, (bi - left_sum) / diag)
                    yield ALU
                    ctx.threadfence()
                    yield ALU
                    ctx.store(_sim.GET_VALUE, i, 1)
                    yield ALU
                    return
                # lines 8-11: productive poll — the lane retries on later
                # warp-steps while its warp-mates keep advancing, which is
                # exactly the integrated last-element check of Section 4.1
                # (a set flag proves col is not this row's diagonal).
                yield Poll(_sim.GET_VALUE, col, 1)
                left_sum += ctx.load(_sim.VALUES, j) * ctx.load(_sim.X, col)
                yield ALU
                j += 1
                col = int(ctx.load(_sim.COL_IDX, j))

        stats = engine.launch(kernel, _grid_threads(m, ws))
        _sim.assert_all_solved(engine, m, self.name)
        return SolveResult(
            x=engine.memory.array(_sim.X).copy(),
            solver_name=self.name,
            exec_ms=device.cycles_to_ms(stats.cycles),
            preprocess=_NO_PREPROCESSING,
            stats=stats,
            device=device,
        )


def _grid_threads(m: int, warp_size: int) -> int:
    """Round the grid up to whole warps (threads past ``m`` exit at once)."""
    return -(-m // warp_size) * warp_size
