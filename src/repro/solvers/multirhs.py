"""SpTRSM: triangular solve with multiple right-hand sides.

The paper's companion work (its reference [21], Liu et al. 2017) extends
the synchronization-free design to multiple right-hand sides; solving
``L X = B`` for a block of vectors is the workhorse of blocked
preconditioners.  The key amortization: the dependency resolution
(flags, polling, level structure) is paid once per row, not once per
row per right-hand side — each thread accumulates all ``k`` partial sums
while waiting on a single flag.

Provided here: a host reference and a Writing-First thread-level kernel,
plus a convenience comparison against ``k`` independent single-RHS
solves (the speedup the blocking buys).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SolverError
from repro.gpu.counters import KernelStats
from repro.gpu.device import DeviceSpec, SIM_SMALL
from repro.gpu.kernel import ALU, Poll, ThreadCtx
from repro.solvers import _sim
from repro.solvers.reference import serial_sptrsv
from repro.sparse.csr import CSRMatrix
from repro.sparse.triangular import check_solvable

__all__ = ["MultiRHSResult", "serial_sptrsm", "capellini_sptrsm"]


@dataclass(frozen=True)
class MultiRHSResult:
    """Outcome of one SpTRSM solve."""

    X: np.ndarray  # shape (n, k)
    exec_ms: float
    stats: KernelStats
    n_rhs: int


def serial_sptrsm(L: CSRMatrix, B: np.ndarray) -> np.ndarray:
    """Host reference: column-by-column Algorithm 1."""
    B = _validate(L, B)
    return np.column_stack([serial_sptrsv(L, B[:, r])
                            for r in range(B.shape[1])])


def capellini_sptrsm(
    L: CSRMatrix,
    B: np.ndarray,
    *,
    device: DeviceSpec = SIM_SMALL,
) -> MultiRHSResult:
    """Writing-First CapelliniSpTRSM: one thread per row, ``k`` sums.

    Control flow is Algorithm 5's; the accumulation and the final
    divide are vectorized over the right-hand sides, guarded by the same
    single per-row flag.
    """
    B = _validate(L, B)
    m, k = B.shape
    ws = device.warp_size
    engine = _sim.make_engine(device)
    mem = engine.memory
    mem.alloc(_sim.ROW_PTR, L.row_ptr)
    mem.alloc(_sim.COL_IDX, L.col_idx)
    mem.alloc(_sim.VALUES, L.values)
    # RHS and solution blocks stored row-major: element (i, r) at i*k + r
    # (_validate already made B a C-contiguous float64 block)
    mem.alloc(_sim.RHS, B.ravel())
    mem.alloc(_sim.X, np.zeros(m * k, dtype=np.float64))
    mem.alloc(_sim.GET_VALUE, np.zeros(m, dtype=np.int8), flags=True)

    def kernel(ctx: ThreadCtx):
        i = ctx.global_id
        if i >= m:
            return
        lo = int(ctx.load(_sim.ROW_PTR, i))
        hi = int(ctx.load(_sim.ROW_PTR, i + 1))
        yield ALU
        sums = [0.0] * k
        j = lo
        col = int(ctx.load(_sim.COL_IDX, j))
        yield ALU
        while True:
            if col == i:
                diag = ctx.load(_sim.VALUES, hi - 1)
                for r in range(k):
                    bi = ctx.load(_sim.RHS, i * k + r)
                    ctx.store(_sim.X, i * k + r, (bi - sums[r]) / diag)
                yield ALU
                ctx.threadfence()
                yield ALU
                ctx.store(_sim.GET_VALUE, i, 1)
                yield ALU
                return
            # one flag guards all k accumulations — the amortization
            yield Poll(_sim.GET_VALUE, col, 1)
            v = ctx.load(_sim.VALUES, j)
            for r in range(k):
                sums[r] += v * ctx.load(_sim.X, col * k + r)
            yield ALU
            j += 1
            col = int(ctx.load(_sim.COL_IDX, j))

    stats = engine.launch(kernel, -(-m // ws) * ws)
    _sim.assert_all_solved(engine, m, "Capellini-SpTRSM")
    X = mem.array(_sim.X).reshape(m, k).copy()
    return MultiRHSResult(
        X=X,
        exec_ms=device.cycles_to_ms(stats.cycles),
        stats=stats,
        n_rhs=k,
    )


def _validate(L: CSRMatrix, B: np.ndarray) -> np.ndarray:
    check_solvable(L)
    B = np.asarray(B, dtype=np.float64)
    if B.ndim == 1:
        # a single right-hand side is just SpTRSM with k=1
        B = B.reshape(-1, 1)
    if B.ndim != 2 or B.shape[0] != L.n_rows:
        raise SolverError(
            f"B must have shape ({L.n_rows}, k), got {B.shape}"
        )
    if B.shape[1] == 0:
        raise SolverError("B must have at least one right-hand side")
    # the kernel indexes element (i, r) at flat offset i*k + r, so hand it
    # a C-contiguous block (copies Fortran-ordered / sliced inputs)
    return np.ascontiguousarray(B)
