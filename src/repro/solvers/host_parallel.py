"""Vectorized host-side level-scheduled SpTRSV.

The inspector-executor pattern from the paper's related work (Kulkarni
et al., Pingali et al.): an *inspector* pass builds an execution plan —
rows regrouped by level, their off-diagonal elements packed contiguously
— and the *executor* then solves each level as a handful of dense numpy
operations.  One gather + one segmented sum + one scaled store per
level: O(nnz) total work with only ``n_levels`` interpreter iterations.

This is the practical way to run large SpTRSVs in pure Python (the SIMT
simulator is a measurement instrument, not a production path), and the
plan is reusable: repeated solves against one factor — the iterative-
solver pattern — pay the inspection once.  :meth:`ExecutionPlan.solve_many`
extends the amortization across right-hand sides: one gather + one
``np.add.reduceat`` per level covers all ``k`` columns, the same
blocking that makes the paper's SpTRSM (Section 5 / reference [21])
cheaper than ``k`` independent solves.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.analysis.levels import LevelSchedule, compute_levels
from repro.errors import SolverError
from repro.gpu.device import DeviceSpec
from repro.obs.hostprof import HostLaunchProfile, active_host_profiler
from repro.solvers.base import PreprocessInfo, SolveResult, SpTRSVSolver
from repro.sparse.csr import CSRMatrix
from repro.sparse.triangular import check_solvable

__all__ = [
    "DEFAULT_PLAN_CACHE_SIZE",
    "ExecutionPlan",
    "HostLevelScheduleSolver",
    "build_plan",
]

#: How many distinct matrices a :class:`HostLevelScheduleSolver` keeps
#: inspected plans for (LRU).  Small: a solver instance typically serves
#: a handful of factors at a time; the serving layer has its own
#: byte-budgeted registry cache.
DEFAULT_PLAN_CACHE_SIZE = 8


@dataclass(frozen=True)
class ExecutionPlan:
    """Inspector output: everything the executor needs, packed flat.

    Attributes
    ----------
    schedule:
        The level schedule the plan was built from.
    rows:
        All row indices, level by level (= ``schedule.order``).
    row_ptr:
        Element spans: row ``rows[k]``'s off-diagonal elements occupy
        ``cols[row_ptr[k]:row_ptr[k+1]]`` / ``vals[...]``.
    cols, vals:
        Off-diagonal columns and values, packed in plan order.
    diag:
        Diagonal value per plan row.
    level_ptr:
        Plan-row spans per level (mirrors ``schedule.level_ptr``).

    The per-level index arithmetic (element spans, the nonempty-row mask,
    segment starts for ``np.add.reduceat``) is hoisted out of the solve
    loop at construction time, and the ``sums`` scratch buffer is
    plan-owned and reused across calls (thread-local, so one plan shared
    by several worker threads never races on scratch memory).
    """

    schedule: LevelSchedule
    rows: np.ndarray
    row_ptr: np.ndarray
    cols: np.ndarray
    vals: np.ndarray
    diag: np.ndarray
    level_ptr: np.ndarray

    def __post_init__(self) -> None:
        # level steps: (r0, r1, e0, e1, nonempty, starts, all_nonempty),
        # precomputed once so the executor loop is pure array ops.  The
        # index arithmetic is vectorized across all levels at once —
        # element spans from one fancy-index of row_ptr, every level's
        # reduceat starts as views of one globally rebased offset array,
        # the nonempty-run bookkeeping from one cumulative sum — so a
        # deep plan build does no per-level array allocation
        nonempty = self.row_ptr[:-1] != self.row_ptr[1:]
        widths = np.diff(self.level_ptr)
        e_at = self.row_ptr[self.level_ptr]
        rel = self.row_ptr[:-1] - np.repeat(e_at[:-1], widths)
        starts_all = rel[nonempty]
        ncnt = np.zeros(len(nonempty) + 1, dtype=np.int64)
        np.cumsum(nonempty, out=ncnt[1:])
        lp = self.level_ptr.tolist()
        ea = e_at.tolist()
        nc = ncnt[self.level_ptr].tolist()
        full = (np.diff(ncnt[self.level_ptr]) == widths).tolist()
        steps = tuple(
            (
                r0,
                r1,
                e0,
                e1,
                nonempty[r0:r1],
                starts_all[n0:n1] if e1 > e0 else None,
                all_ne,
            )
            for r0, r1, e0, e1, n0, n1, all_ne in zip(
                lp[:-1], lp[1:], ea[:-1], ea[1:], nc[:-1], nc[1:], full
            )
        )
        object.__setattr__(self, "_steps", steps)
        object.__setattr__(self, "_nonempty", nonempty)
        object.__setattr__(self, "_starts_all", starts_all)
        object.__setattr__(
            self,
            "_max_width",
            int(widths.max()) if len(widths) else 0,
        )
        object.__setattr__(self, "_scratch", threading.local())

    @property
    def n_levels(self) -> int:
        return self.schedule.n_levels

    @property
    def n_rows(self) -> int:
        return len(self.rows)

    @property
    def nbytes(self) -> int:
        """Resident bytes of the plan-owned arrays.

        Counts the packed element arrays and the precomputed level-step
        indices; the shared :attr:`schedule` is accounted by whoever owns
        it (the registry counts it under the features artifact).
        """
        # the per-level step tuples hold views of _nonempty/_starts_all,
        # so the backing arrays are counted once
        return (
            self.rows.nbytes
            + self.row_ptr.nbytes
            + self.cols.nbytes
            + self.vals.nbytes
            + self.diag.nbytes
            + self.level_ptr.nbytes
            + self._nonempty.nbytes
            + self._starts_all.nbytes
        )

    # ------------------------------------------------------------------
    # executors
    # ------------------------------------------------------------------
    def solve(self, b: np.ndarray) -> np.ndarray:
        """Executor: one vectorized pass per level, single RHS."""
        b = np.asarray(b, dtype=np.float64)
        if b.ndim != 1 or b.shape[0] != self.n_rows:
            raise SolverError(
                f"b has shape {b.shape}, expected ({self.n_rows},)"
            )
        return self._execute(b.reshape(-1, 1))[:, 0]

    def solve_many(self, B: np.ndarray) -> np.ndarray:
        """Executor over a block: solve ``L X = B`` for all columns.

        Vectorized over both the level's rows and all ``k`` right-hand
        sides: one gather + one ``np.add.reduceat`` per level works on an
        ``(nnz_off, k)`` block.  Accepts 1-D ``b`` (promoted to one
        column), float32, and non-contiguous / Fortran-ordered inputs,
        mirroring :func:`repro.solvers.multirhs.capellini_sptrsm`; always
        returns a fresh ``(n, k)`` float64 array.
        """
        B = np.asarray(B, dtype=np.float64)
        if B.ndim == 1:
            B = B.reshape(-1, 1)
        if B.ndim != 2 or B.shape[0] != self.n_rows:
            raise SolverError(
                f"B must have shape ({self.n_rows}, k), got {B.shape}"
            )
        if B.shape[1] == 0:
            raise SolverError("B must have at least one right-hand side")
        return self._execute(B)

    def _execute(self, B: np.ndarray) -> np.ndarray:
        profiler = active_host_profiler()
        if profiler is not None:
            return self._execute_profiled(B, profiler)
        n, k = B.shape
        X = np.zeros((n, k), dtype=np.float64)
        rows, cols, vals, diag = self.rows, self.cols, self.vals, self.diag
        for r0, r1, e0, e1, ne, starts, all_nonempty in self._steps:
            level_rows = rows[r0:r1]
            d = diag[r0:r1, None]
            if e1 > e0:
                contrib = vals[e0:e1, None] * X[cols[e0:e1]]
                if all_nonempty:
                    sums = np.add.reduceat(contrib, starts, axis=0)
                else:
                    sums = self._sums(r1 - r0, k)
                    sums[~ne] = 0.0
                    sums[ne] = np.add.reduceat(contrib, starts, axis=0)
                X[level_rows] = (B[level_rows] - sums) / d
            else:
                X[level_rows] = B[level_rows] / d
        return X

    def _execute_profiled(self, B: np.ndarray, profiler) -> np.ndarray:
        """The executor loop with per-level wall-clock attribution.

        Identical operations in identical order to :meth:`_execute` —
        the profiler only reads the clock around the numpy segments, so
        the result is bit-identical to an unprofiled solve.  Kept as a
        separate loop so the unprofiled hot path stays branch-free.
        """
        clock = time.perf_counter
        n, k = B.shape
        X = np.zeros((n, k), dtype=np.float64)
        rows, cols, vals, diag = self.rows, self.cols, self.vals, self.diag
        # raw (rows, nnz, gather_s, reduce_s, scatter_s) tuples; the
        # HostLevelSample objects are materialized lazily by
        # HostLaunchProfile, so sample construction is never billed to
        # (or perturbs) the solve itself
        raw: list[tuple] = []
        t_launch = clock()
        for r0, r1, e0, e1, ne, starts, all_nonempty in self._steps:
            level_rows = rows[r0:r1]
            d = diag[r0:r1, None]
            if e1 > e0:
                t0 = clock()
                contrib = vals[e0:e1, None] * X[cols[e0:e1]]
                t1 = clock()
                if all_nonempty:
                    sums = np.add.reduceat(contrib, starts, axis=0)
                else:
                    sums = self._sums(r1 - r0, k)
                    sums[~ne] = 0.0
                    sums[ne] = np.add.reduceat(contrib, starts, axis=0)
                t2 = clock()
                X[level_rows] = (B[level_rows] - sums) / d
                t3 = clock()
                raw.append(
                    (r1 - r0, (e1 - e0) + (r1 - r0),
                     t1 - t0, t2 - t1, t3 - t2)
                )
            else:
                t2 = clock()
                X[level_rows] = B[level_rows] / d
                t3 = clock()
                raw.append((r1 - r0, r1 - r0, 0.0, 0.0, t3 - t2))
        wall_s = clock() - t_launch
        profiler.record(
            HostLaunchProfile(
                n_rows=n,
                n_rhs=k,
                n_levels=self.n_levels,
                nnz=len(self.cols) + n,
                wall_s=wall_s,
                raw=tuple(raw),
            )
        )
        return X

    def _sums(self, width: int, k: int) -> np.ndarray:
        """Reusable per-thread scratch for a level's partial sums."""
        loc = self._scratch
        buf = getattr(loc, "sums", None)
        if buf is None or buf.shape[1] < k:
            buf = np.empty((self._max_width, k), dtype=np.float64)
            loc.sums = buf
        return buf[:width, :k]


def build_plan(
    L: CSRMatrix, *, schedule: LevelSchedule | None = None
) -> ExecutionPlan:
    """Inspector: pack ``L``'s off-diagonal elements in level order."""
    check_solvable(L)
    schedule = schedule or compute_levels(L)
    order = schedule.order
    # off-diagonal spans per original row (diagonal is last by contract)
    off_lo = L.row_ptr[:-1]
    off_hi = L.row_ptr[1:] - 1
    lengths = (off_hi - off_lo).astype(np.int64)

    plan_lengths = lengths[order]
    row_ptr = np.zeros(L.n_rows + 1, dtype=np.int64)
    np.cumsum(plan_lengths, out=row_ptr[1:])

    total = int(row_ptr[-1])
    # gather indices, vectorized: element e of plan row k maps to
    # off_lo[order[k]] + (e - row_ptr[k])
    src_base = np.repeat(off_lo[order], plan_lengths)
    src_rel = np.arange(total, dtype=np.int64) - np.repeat(
        row_ptr[:-1], plan_lengths
    )
    src = src_base + src_rel
    cols = L.col_idx[src]
    vals = L.values[src]
    diag = L.values[L.row_ptr[1:] - 1][order]
    return ExecutionPlan(
        schedule=schedule,
        rows=order.copy(),
        row_ptr=row_ptr,
        cols=cols,
        vals=vals,
        diag=diag,
        level_ptr=schedule.level_ptr.copy(),
    )


class HostLevelScheduleSolver(SpTRSVSolver):
    """Inspector-executor SpTRSV on the host (wall-clock timed).

    Plans are cached per matrix *content* (blake2b fingerprint, see
    :meth:`repro.sparse.csr.CSRMatrix.content_fingerprint`) behind a
    small LRU, so repeated solves against the same factor — or an
    equal-content copy of it — skip the inspector, and alternating
    between a working set of factors does not thrash.  Identity-based
    keys would be wrong here: CPython reuses ``id()`` values after
    garbage collection, which can silently serve a stale plan built for
    a different matrix.
    """

    name = "HostVectorized"
    storage_format = "CSR"
    preprocessing_overhead = "high"
    requires_synchronization = True
    processing_granularity = "vector"

    def __init__(self, *, plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE) -> None:
        if plan_cache_size <= 0:
            raise ValueError("plan_cache_size must be positive")
        self.plan_cache_size = plan_cache_size
        self._plan_cache: "OrderedDict[str, ExecutionPlan]" = OrderedDict()

    def plan_for(self, L: CSRMatrix) -> ExecutionPlan:
        """The (cached) execution plan for ``L``, keyed by content."""
        key = L.content_fingerprint()
        plan = self._plan_cache.get(key)
        if plan is None:
            plan = build_plan(L)
            self._plan_cache[key] = plan
            while len(self._plan_cache) > self.plan_cache_size:
                self._plan_cache.popitem(last=False)
        else:
            self._plan_cache.move_to_end(key)
        return plan

    def _solve(
        self, L: CSRMatrix, b: np.ndarray, device: DeviceSpec
    ) -> SolveResult:
        t0 = time.perf_counter()
        plan = self.plan_for(L)
        prep = time.perf_counter() - t0
        t1 = time.perf_counter()
        x = plan.solve(b)
        dt = time.perf_counter() - t1
        return SolveResult(
            x=x,
            solver_name=self.name,
            exec_ms=dt * 1e3,
            preprocess=PreprocessInfo(
                description="inspector: level schedule + element packing "
                "(cached across solves of the same matrix)",
                host_seconds=prep,
            ),
            extra={"n_levels": plan.n_levels},
        )
