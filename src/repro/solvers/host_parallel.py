"""Vectorized host-side level-scheduled SpTRSV.

The inspector-executor pattern from the paper's related work (Kulkarni
et al., Pingali et al.): an *inspector* pass builds an execution plan —
rows regrouped by level, their off-diagonal elements packed contiguously
— and the *executor* then solves each level as a handful of dense numpy
operations.  One gather + one segmented sum + one scaled store per
level: O(nnz) total work with only ``n_levels`` interpreter iterations.

This is the practical way to run large SpTRSVs in pure Python (the SIMT
simulator is a measurement instrument, not a production path), and the
plan is reusable: repeated solves against one factor — the iterative-
solver pattern — pay the inspection once.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.analysis.levels import LevelSchedule, compute_levels
from repro.gpu.device import DeviceSpec
from repro.solvers.base import PreprocessInfo, SolveResult, SpTRSVSolver
from repro.sparse.csr import CSRMatrix
from repro.sparse.triangular import check_solvable

__all__ = ["ExecutionPlan", "HostLevelScheduleSolver", "build_plan"]


@dataclass(frozen=True)
class ExecutionPlan:
    """Inspector output: everything the executor needs, packed flat.

    Attributes
    ----------
    schedule:
        The level schedule the plan was built from.
    rows:
        All row indices, level by level (= ``schedule.order``).
    row_ptr:
        Element spans: row ``rows[k]``'s off-diagonal elements occupy
        ``cols[row_ptr[k]:row_ptr[k+1]]`` / ``vals[...]``.
    cols, vals:
        Off-diagonal columns and values, packed in plan order.
    diag:
        Diagonal value per plan row.
    level_ptr:
        Plan-row spans per level (mirrors ``schedule.level_ptr``).
    """

    schedule: LevelSchedule
    rows: np.ndarray
    row_ptr: np.ndarray
    cols: np.ndarray
    vals: np.ndarray
    diag: np.ndarray
    level_ptr: np.ndarray

    @property
    def n_levels(self) -> int:
        return self.schedule.n_levels

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Executor: one vectorized pass per level."""
        b = np.asarray(b, dtype=np.float64)
        n = len(self.rows)
        x = np.zeros(n, dtype=np.float64)
        rows, row_ptr = self.rows, self.row_ptr
        cols, vals, diag = self.cols, self.vals, self.diag
        lptr = self.level_ptr
        nonempty_global = row_ptr[:-1] != row_ptr[1:]
        for k in range(self.n_levels):
            r0, r1 = int(lptr[k]), int(lptr[k + 1])
            e0, e1 = int(row_ptr[r0]), int(row_ptr[r1])
            level_rows = rows[r0:r1]
            if e1 > e0:
                contrib = vals[e0:e1] * x[cols[e0:e1]]
                sums = np.zeros(r1 - r0, dtype=np.float64)
                ne = nonempty_global[r0:r1]
                if ne.any():
                    starts = row_ptr[r0:r1][ne] - e0
                    sums[ne] = np.add.reduceat(contrib, starts)
                x[level_rows] = (b[level_rows] - sums) / diag[r0:r1]
            else:
                x[level_rows] = b[level_rows] / diag[r0:r1]
        return x


def build_plan(
    L: CSRMatrix, *, schedule: LevelSchedule | None = None
) -> ExecutionPlan:
    """Inspector: pack ``L``'s off-diagonal elements in level order."""
    check_solvable(L)
    schedule = schedule or compute_levels(L)
    order = schedule.order
    # off-diagonal spans per original row (diagonal is last by contract)
    off_lo = L.row_ptr[:-1]
    off_hi = L.row_ptr[1:] - 1
    lengths = (off_hi - off_lo).astype(np.int64)

    plan_lengths = lengths[order]
    row_ptr = np.zeros(L.n_rows + 1, dtype=np.int64)
    np.cumsum(plan_lengths, out=row_ptr[1:])

    total = int(row_ptr[-1])
    # gather indices, vectorized: element e of plan row k maps to
    # off_lo[order[k]] + (e - row_ptr[k])
    src_base = np.repeat(off_lo[order], plan_lengths)
    src_rel = np.arange(total, dtype=np.int64) - np.repeat(
        row_ptr[:-1], plan_lengths
    )
    src = src_base + src_rel
    cols = L.col_idx[src]
    vals = L.values[src]
    diag = L.values[L.row_ptr[1:] - 1][order]
    return ExecutionPlan(
        schedule=schedule,
        rows=order.copy(),
        row_ptr=row_ptr,
        cols=cols,
        vals=vals,
        diag=diag,
        level_ptr=schedule.level_ptr.copy(),
    )


class HostLevelScheduleSolver(SpTRSVSolver):
    """Inspector-executor SpTRSV on the host (wall-clock timed).

    Plans are cached per matrix identity, so repeated solves against the
    same factor skip the inspector.
    """

    name = "HostVectorized"
    storage_format = "CSR"
    preprocessing_overhead = "high"
    requires_synchronization = True
    processing_granularity = "vector"

    def __init__(self) -> None:
        self._plan_cache: dict[int, ExecutionPlan] = {}

    def plan_for(self, L: CSRMatrix) -> ExecutionPlan:
        """The (cached) execution plan for ``L``."""
        key = id(L)
        plan = self._plan_cache.get(key)
        if plan is None:
            plan = build_plan(L)
            self._plan_cache.clear()  # cache exactly one matrix
            self._plan_cache[key] = plan
        return plan

    def _solve(
        self, L: CSRMatrix, b: np.ndarray, device: DeviceSpec
    ) -> SolveResult:
        t0 = time.perf_counter()
        plan = self.plan_for(L)
        prep = time.perf_counter() - t0
        t1 = time.perf_counter()
        x = plan.solve(b)
        dt = time.perf_counter() - t1
        return SolveResult(
            x=x,
            solver_name=self.name,
            exec_ms=dt * 1e3,
            preprocess=PreprocessInfo(
                description="inspector: level schedule + element packing "
                "(cached across solves of the same matrix)",
                host_seconds=prep,
            ),
            extra={"n_levels": plan.n_levels},
        )
