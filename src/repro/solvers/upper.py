"""Upper-triangular solves via index reversal.

Every solver in this package is written for lower triangular systems.
``U x = b`` reduces to a lower solve under the anti-transpose (reverse)
permutation ``P`` that maps index ``i`` to ``n-1-i``:

.. math::  U x = b  \\iff  (P U P) (P x) = (P b)

and ``P U P`` is lower triangular with each diagonal stored as the last
element of its row — exactly this library's input contract.  The
reversal is O(nnz), done once per call; callers solving repeatedly
should reverse once via :func:`reverse_matrix` and keep the result.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotTriangularError
from repro.gpu.device import DeviceSpec, SIM_SMALL
from repro.solvers.base import SpTRSVSolver
from repro.sparse.coo import COOMatrix
from repro.sparse.convert import coo_to_csr, csr_to_coo
from repro.sparse.csr import CSRMatrix

__all__ = ["reverse_matrix", "is_upper_triangular", "solve_upper"]


def is_upper_triangular(csr: CSRMatrix, *, require_diagonal: bool = True) -> bool:
    """True iff every stored element satisfies ``col >= row`` (and each
    row's first element is its diagonal, when required)."""
    if not csr.is_square:
        return False
    rows = np.repeat(np.arange(csr.n_rows, dtype=np.int64), csr.row_lengths())
    if np.any(csr.col_idx < rows):
        return False
    if require_diagonal:
        if np.any(csr.row_lengths() == 0):
            return False
        first = csr.col_idx[csr.row_ptr[:-1]]
        if np.any(first != np.arange(csr.n_rows)):
            return False
    return True


def reverse_matrix(csr: CSRMatrix) -> CSRMatrix:
    """The anti-transpose reindexing: ``B[i, j] = A[n-1-i, n-1-j]``.

    Maps upper triangular to lower triangular (and back); involutive.
    """
    if not csr.is_square:
        raise NotTriangularError(
            f"reverse_matrix needs a square matrix, got {csr.shape}"
        )
    n = csr.n_rows
    coo = csr_to_coo(csr)
    return coo_to_csr(
        COOMatrix(n, n, n - 1 - coo.rows, n - 1 - coo.cols, coo.values)
    )


def solve_upper(
    solver: SpTRSVSolver,
    U: CSRMatrix,
    b: np.ndarray,
    *,
    device: DeviceSpec = SIM_SMALL,
) -> np.ndarray:
    """Solve ``U x = b`` with any lower-triangular SpTRSV solver."""
    if not is_upper_triangular(U, require_diagonal=True):
        raise NotTriangularError(
            "solve_upper needs an upper triangular matrix with explicit "
            "diagonals stored first in each row"
        )
    b = np.asarray(b, dtype=np.float64)
    L_rev = reverse_matrix(U)
    y = solver.solve(L_rev, b[::-1].copy(), device=device).x
    return y[::-1].copy()
