"""Level-set SpTRSV (Algorithm 2; Anderson & Saad [1], Saltz [35]).

Preprocessing partitions the components into level-sets (the expensive
step Table 1 charges at hundreds of milliseconds for large matrices);
execution then launches one grid per level — one thread per component,
no flags needed because the schedule guarantees every dependency is
already solved — with an inter-level synchronization cost per launch
(the "costly synchronizations" of Section 2.2).
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.levels import compute_levels
from repro.gpu.counters import KernelStats
from repro.gpu.device import DeviceSpec
from repro.gpu.kernel import ALU, ThreadCtx
from repro.perfmodel.calibration import (
    Calibration,
    DEFAULT_CALIBRATION,
    preprocessing_model_ms,
)
from repro.solvers import _sim
from repro.solvers.base import PreprocessInfo, SolveResult, SpTRSVSolver
from repro.sparse.csr import CSRMatrix

__all__ = ["LevelSetSolver"]


class LevelSetSolver(SpTRSVSolver):
    """Algorithm 2 on the SIMT simulator, one launch per level."""

    name = "LevelSet"
    storage_format = "CSR"
    preprocessing_overhead = "high"
    requires_synchronization = True
    processing_granularity = "thread/warp"

    #: preprocessing-model key (subclasses override; see CuSparseProxySolver)
    _prep_model = "levelset"

    def __init__(self, *, calibration: Calibration = DEFAULT_CALIBRATION) -> None:
        self.calibration = calibration

    def _sync_cycles(self) -> float:
        """Inter-level synchronization cost per level (cycles)."""
        return self.calibration.levelset_sync_cycles

    def _solve(
        self, L: CSRMatrix, b: np.ndarray, device: DeviceSpec
    ) -> SolveResult:
        # ---- preprocessing: the level-set partition ------------------
        t0 = time.perf_counter()
        schedule = compute_levels(L)
        prep_host = time.perf_counter() - t0

        engine = _sim.make_engine(device)
        _sim.alloc_system(engine, L, b, with_flags=False)
        engine.memory.alloc("order", schedule.order)

        m = L.n_rows
        stats: KernelStats | None = None
        level_ptr = schedule.level_ptr
        for k in range(schedule.n_levels):
            base = int(level_ptr[k])
            size = int(level_ptr[k + 1]) - base
            launch_stats = engine.launch(
                _make_level_kernel(base, size), max(size, 1)
            )
            stats = launch_stats if stats is None else stats.merged_with(launch_stats)
        assert stats is not None  # n_levels >= 1 for a nonempty matrix

        sync_cycles = int(self._sync_cycles() * schedule.n_levels)
        exec_cycles = stats.cycles + sync_cycles
        return SolveResult(
            x=engine.memory.array(_sim.X).copy(),
            solver_name=self.name,
            exec_ms=device.cycles_to_ms(exec_cycles),
            preprocess=PreprocessInfo(
                description="level-set partition (layer / layer_num / order)",
                modeled_ms=preprocessing_model_ms(
                    self._prep_model,
                    n_rows=m,
                    nnz=L.nnz,
                    n_levels=schedule.n_levels,
                    calibration=self.calibration,
                ),
                host_seconds=prep_host,
            ),
            stats=_with_sync_overhead(stats, sync_cycles),
            device=device,
            extra={"n_levels": schedule.n_levels},
        )


def _make_level_kernel(base: int, size: int):
    """Kernel solving the ``size`` components of one level (Algorithm 2
    lines 3-8); thread ``t`` handles ``order[base + t]``."""

    def kernel(ctx: ThreadCtx):
        t = ctx.global_id
        if t >= size:
            return
        row = int(ctx.load("order", base + t))  # line 3
        lo = int(ctx.load(_sim.ROW_PTR, row))
        hi = int(ctx.load(_sim.ROW_PTR, row + 1))
        yield ALU
        left_sum = 0.0
        for j in range(lo, hi - 1):  # lines 5-6
            col = int(ctx.load(_sim.COL_IDX, j))
            left_sum += ctx.load(_sim.VALUES, j) * ctx.load(_sim.X, col)
            yield ALU
        bi = ctx.load(_sim.RHS, row)
        diag = ctx.load(_sim.VALUES, hi - 1)
        ctx.store(_sim.X, row, (bi - left_sum) / diag)  # lines 7-8
        yield ALU

    return kernel


def _with_sync_overhead(stats: KernelStats, sync_cycles: int) -> KernelStats:
    """Fold the modeled inter-level synchronization into the launch stats.

    Synchronization cycles are dependency stalls (every warp of the next
    level waits on the barrier — Section 2.2's bottleneck), and barrier
    waiting executes spin instructions on real hardware, which is why the
    paper's Figure 8(a) shows cuSPARSE executing the same order of
    instructions as SyncFree despite doing less numeric work.
    """
    return KernelStats(
        cycles=stats.cycles + sync_cycles,
        warp_instructions=stats.warp_instructions,
        spin_instructions=stats.spin_instructions + sync_cycles,
        stall_cycles=stats.stall_cycles + sync_cycles,
        active_lane_slots=stats.active_lane_slots,
        idle_lane_slots=stats.idle_lane_slots,
        warps_launched=stats.warps_launched,
        dram_bytes=stats.dram_bytes,
        cache_bytes=stats.cache_bytes,
        flag_polls=stats.flag_polls,
        fences=stats.fences,
        mem_stall_cycles=stats.mem_stall_cycles,
    )
