"""Granularity-driven solver selection (the decision rule of Figure 6).

The paper's Figure 6 shows the optimal-algorithm distribution over the
(average nonzeros per row, average components per level) plane:
CapelliniSpTRSV wins when levels are wide and rows are thin; SyncFree
wins otherwise.  Equation 1 collapses the two axes into the parallel
granularity, with 0.7 as the empirical crossover (Section 5.2).

:func:`solver_chain` generalizes the rule into a *preference ladder*:
the granularity-selected primary first, then progressively more
conservative fallbacks ending at the barrier-synchronized
:class:`~repro.solvers.levelset.LevelSetSolver`, which is safe on any
solvable system.  The serving engine (:mod:`repro.serve`) walks this
ladder when a kernel raises, so selection and fallback share one code
path instead of hard-coding solver classes in two places.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.analysis.features import MatrixFeatures, extract_features
from repro.analysis.granularity import HIGH_GRANULARITY_THRESHOLD
from repro.errors import SolverError
from repro.solvers.base import SpTRSVSolver
from repro.solvers.capellini import (
    TwoPhaseCapelliniSolver,
    WritingFirstCapelliniSolver,
)
from repro.solvers.cusparse_proxy import CuSparseProxySolver
from repro.solvers.levelset import LevelSetSolver
from repro.solvers.syncfree import SyncFreeSolver
from repro.solvers.syncfree_csc import SyncFreeCSCSolver
from repro.sparse.csr import CSRMatrix

__all__ = [
    "select_solver",
    "solver_chain",
    "ALL_SIMULATED_SOLVERS",
    "FALLBACK_LADDER",
]

#: Factories for every simulated algorithm the evaluation compares.
ALL_SIMULATED_SOLVERS: tuple[type[SpTRSVSolver], ...] = (
    LevelSetSolver,
    CuSparseProxySolver,
    SyncFreeSolver,
    SyncFreeCSCSolver,
    TwoPhaseCapelliniSolver,
    WritingFirstCapelliniSolver,
)

#: Progressively more conservative synchronization disciplines: the
#: Writing-First kernel (fastest, productive polls), the Two-Phase kernel
#: (bounded poll loop), and finally the barrier-scheduled level-set
#: solver, which cannot encounter a synchronization hazard at all.
FALLBACK_LADDER: tuple[type[SpTRSVSolver], ...] = (
    WritingFirstCapelliniSolver,
    TwoPhaseCapelliniSolver,
    LevelSetSolver,
)


def _features_of(
    matrix_or_features: CSRMatrix | MatrixFeatures,
) -> MatrixFeatures:
    if isinstance(matrix_or_features, MatrixFeatures):
        return matrix_or_features
    return extract_features(matrix_or_features)


def solver_chain(
    matrix_or_features: CSRMatrix | MatrixFeatures,
    *,
    threshold: float = HIGH_GRANULARITY_THRESHOLD,
    candidates: Optional[Iterable[type[SpTRSVSolver]]] = None,
) -> tuple[SpTRSVSolver, ...]:
    """The full preference ladder for a matrix, primary first.

    The head of the chain is what :func:`select_solver` returns — the
    paper's Figure 6 decision.  The tail is the fallback ladder the
    serving engine retries down when a kernel raises
    (Writing-First → Two-Phase → LevelSet), minus whatever the head
    already covers.

    ``candidates`` optionally restricts the ladder to a set of solver
    classes (e.g. an operator disabling a kernel fleet-wide).  An empty
    intersection raises :class:`~repro.errors.SolverError`.
    """
    features = _features_of(matrix_or_features)
    primary: type[SpTRSVSolver]
    if features.granularity > threshold:
        primary = WritingFirstCapelliniSolver
    else:
        primary = SyncFreeSolver
    ladder: list[type[SpTRSVSolver]] = [primary]
    ladder.extend(cls for cls in FALLBACK_LADDER if cls is not primary)
    if candidates is not None:
        allowed = _as_class_set(candidates)
        ladder = [cls for cls in ladder if cls in allowed]
        if not ladder:
            raise SolverError(
                "candidates excludes every solver in the preference ladder"
            )
    return tuple(cls() for cls in ladder)


def _as_class_set(
    candidates: Iterable[type[SpTRSVSolver]],
) -> frozenset[type[SpTRSVSolver]]:
    classes = frozenset(candidates)
    for cls in classes:
        if not (isinstance(cls, type) and issubclass(cls, SpTRSVSolver)):
            raise SolverError(
                f"candidates must be SpTRSVSolver subclasses, got {cls!r}"
            )
    return classes


def select_solver(
    matrix_or_features: CSRMatrix | MatrixFeatures,
    *,
    threshold: float = HIGH_GRANULARITY_THRESHOLD,
    candidates: Optional[Sequence[type[SpTRSVSolver]]] = None,
) -> SpTRSVSolver:
    """Pick the solver the paper's evidence says should win.

    High parallel granularity (wide levels, thin rows) → thread-level
    Writing-First Capellini; otherwise the warp-level SyncFree baseline.
    Accepts a matrix (features are computed, including the level
    schedule) or precomputed :class:`MatrixFeatures`.  ``candidates``
    restricts the choice exactly as in :func:`solver_chain` — the
    selection is the head of that chain.
    """
    return solver_chain(
        matrix_or_features, threshold=threshold, candidates=candidates
    )[0]
