"""Granularity-driven solver selection (the decision rule of Figure 6).

The paper's Figure 6 shows the optimal-algorithm distribution over the
(average nonzeros per row, average components per level) plane:
CapelliniSpTRSV wins when levels are wide and rows are thin; SyncFree
wins otherwise.  Equation 1 collapses the two axes into the parallel
granularity, with 0.7 as the empirical crossover (Section 5.2).
"""

from __future__ import annotations

from repro.analysis.features import MatrixFeatures, extract_features
from repro.analysis.granularity import HIGH_GRANULARITY_THRESHOLD
from repro.solvers.base import SpTRSVSolver
from repro.solvers.capellini import (
    TwoPhaseCapelliniSolver,
    WritingFirstCapelliniSolver,
)
from repro.solvers.cusparse_proxy import CuSparseProxySolver
from repro.solvers.levelset import LevelSetSolver
from repro.solvers.syncfree import SyncFreeSolver
from repro.solvers.syncfree_csc import SyncFreeCSCSolver
from repro.sparse.csr import CSRMatrix

__all__ = ["select_solver", "ALL_SIMULATED_SOLVERS"]

#: Factories for every simulated algorithm the evaluation compares.
ALL_SIMULATED_SOLVERS: tuple[type[SpTRSVSolver], ...] = (
    LevelSetSolver,
    CuSparseProxySolver,
    SyncFreeSolver,
    SyncFreeCSCSolver,
    TwoPhaseCapelliniSolver,
    WritingFirstCapelliniSolver,
)


def select_solver(
    matrix_or_features: CSRMatrix | MatrixFeatures,
    *,
    threshold: float = HIGH_GRANULARITY_THRESHOLD,
) -> SpTRSVSolver:
    """Pick the solver the paper's evidence says should win.

    High parallel granularity (wide levels, thin rows) → thread-level
    Writing-First Capellini; otherwise the warp-level SyncFree baseline.
    Accepts a matrix (features are computed, including the level
    schedule) or precomputed :class:`MatrixFeatures`.
    """
    if isinstance(matrix_or_features, MatrixFeatures):
        features = matrix_or_features
    else:
        features = extract_features(matrix_or_features)
    if features.granularity > threshold:
        return WritingFirstCapelliniSolver()
    return SyncFreeSolver()
