"""The naive thread-level SpTRSV — the paper's Challenge 1 (Section 3.3).

This is what you get if you take the warp-level SyncFree algorithm and
"just" assign one thread per row while keeping its blocking busy-wait:
whenever a row depends on a component produced by another lane of the
*same* warp, the spinning lane stops the whole lock-step warp — including
the producer — and the kernel deadlocks.

It is included deliberately: it demonstrates why Capellini's two-phase /
writing-first designs are necessary, and it exercises the simulator's
deadlock detection.  On matrices whose dependencies never stay inside a
warp (e.g. a diagonal matrix, or any matrix when consecutive rows are
independent within each aligned group of ``warp_size`` rows) it is
correct and completes.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.device import DeviceSpec
from repro.gpu.kernel import ALU, SpinWait, ThreadCtx
from repro.solvers import _sim
from repro.solvers.base import PreprocessInfo, SolveResult, SpTRSVSolver
from repro.sparse.csr import CSRMatrix

__all__ = ["NaiveThreadSolver", "has_intra_warp_dependency"]


def has_intra_warp_dependency(L: CSRMatrix, warp_size: int) -> bool:
    """True if some element's producer row shares the consumer's warp.

    Exactly the condition under which :class:`NaiveThreadSolver`
    deadlocks (and the condition Capellini's phase split is built around).
    """
    rows = np.repeat(np.arange(L.n_rows, dtype=np.int64), L.row_lengths())
    warp_of_row = rows // warp_size
    warp_of_col = L.col_idx // warp_size
    strict = L.col_idx < rows
    return bool(np.any((warp_of_row == warp_of_col) & strict))


class NaiveThreadSolver(SpTRSVSolver):
    """One thread per row with blocking busy-waits (deadlocks; see module)."""

    name = "NaiveThread"
    storage_format = "CSR"
    preprocessing_overhead = "none"
    requires_synchronization = False
    processing_granularity = "thread"

    def _solve(
        self, L: CSRMatrix, b: np.ndarray, device: DeviceSpec
    ) -> SolveResult:
        m = L.n_rows
        ws = device.warp_size
        engine = _sim.make_engine(device)
        _sim.alloc_system(engine, L, b)

        def kernel(ctx: ThreadCtx):
            i = ctx.global_id
            if i >= m:
                return
            lo = int(ctx.load(_sim.ROW_PTR, i))
            hi = int(ctx.load(_sim.ROW_PTR, i + 1))
            yield ALU
            left_sum = 0.0
            for j in range(lo, hi - 1):
                col = int(ctx.load(_sim.COL_IDX, j))
                yield ALU
                # the fatal line: a blocking while-loop on a flag that may
                # be owned by a lane of this very warp
                yield SpinWait(  # kernel-lint: allow=KL002 -- Challenge-1 demo
                    _sim.GET_VALUE, col, 1
                )
                left_sum += ctx.load(_sim.VALUES, j) * ctx.load(_sim.X, col)
                yield ALU
            bi = ctx.load(_sim.RHS, i)
            diag = ctx.load(_sim.VALUES, hi - 1)
            ctx.store(_sim.X, i, (bi - left_sum) / diag)
            yield ALU
            ctx.threadfence()
            yield ALU
            ctx.store(_sim.GET_VALUE, i, 1)
            yield ALU

        n_threads = -(-m // ws) * ws
        stats = engine.launch(kernel, n_threads)  # may raise DeadlockError
        _sim.assert_all_solved(engine, m, self.name)
        return SolveResult(
            x=engine.memory.array(_sim.X).copy(),
            solver_name=self.name,
            exec_ms=device.cycles_to_ms(stats.cycles),
            preprocess=PreprocessInfo(description="none"),
            stats=stats,
            device=device,
        )
