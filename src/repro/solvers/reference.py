"""Host reference solvers.

:class:`SerialReferenceSolver` is Algorithm 1 of the paper verbatim — the
serial forward substitution every parallel variant must agree with.
:class:`ScipyReferenceSolver` wraps ``scipy.sparse.linalg.spsolve_triangular``
as an *independent* oracle (it shares no code with this repository), used
by the test suite to cross-check our own reference.

Both report host wall time as ``exec_ms``; they carry no kernel stats and
never appear in the paper-comparison tables.
"""

from __future__ import annotations

import time

import numpy as np

from repro.gpu.device import DeviceSpec
from repro.solvers.base import PreprocessInfo, SolveResult, SpTRSVSolver
from repro.sparse.csr import CSRMatrix

__all__ = ["SerialReferenceSolver", "ScipyReferenceSolver", "serial_sptrsv"]


def serial_sptrsv(L: CSRMatrix, b: np.ndarray) -> np.ndarray:
    """Algorithm 1: serial forward substitution over CSR.

    The inner dot product is vectorized with numpy; the row loop is the
    inherent sequential dependency of the algorithm.
    """
    n = L.n_rows
    x = np.zeros(n, dtype=np.float64)
    row_ptr, col_idx, values = L.row_ptr, L.col_idx, L.values
    for i in range(n):
        lo, hi = row_ptr[i], row_ptr[i + 1]
        # all elements of the row except the last (the diagonal)
        cols = col_idx[lo: hi - 1]
        vals = values[lo: hi - 1]
        left_sum = vals @ x[cols] if cols.size else 0.0
        x[i] = (b[i] - left_sum) / values[hi - 1]
    return x


class SerialReferenceSolver(SpTRSVSolver):
    """Algorithm 1 (basic SpTRSV) on the host."""

    name = "Serial"
    storage_format = "CSR"
    preprocessing_overhead = "none"
    requires_synchronization = False
    processing_granularity = "serial"

    def _solve(
        self, L: CSRMatrix, b: np.ndarray, device: DeviceSpec
    ) -> SolveResult:
        t0 = time.perf_counter()
        x = serial_sptrsv(L, b)
        dt = time.perf_counter() - t0
        return SolveResult(
            x=x,
            solver_name=self.name,
            exec_ms=dt * 1e3,
            preprocess=PreprocessInfo(description="none"),
        )


class ScipyReferenceSolver(SpTRSVSolver):
    """Independent oracle via scipy's triangular solve."""

    name = "SciPy"
    storage_format = "CSR"
    preprocessing_overhead = "none"
    requires_synchronization = False
    processing_granularity = "serial"

    def _solve(
        self, L: CSRMatrix, b: np.ndarray, device: DeviceSpec
    ) -> SolveResult:
        import scipy.sparse.linalg as spla

        from repro.sparse.convert import csr_to_scipy

        t0 = time.perf_counter()
        x = spla.spsolve_triangular(csr_to_scipy(L), b, lower=True)
        dt = time.perf_counter() - t0
        return SolveResult(
            x=np.asarray(x, dtype=np.float64),
            solver_name=self.name,
            exec_ms=dt * 1e3,
            preprocess=PreprocessInfo(description="none"),
        )
