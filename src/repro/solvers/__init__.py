"""SpTRSV solver implementations.

Every algorithm the paper discusses is implemented here behind one
interface (:class:`~repro.solvers.base.SpTRSVSolver`):

===============================  =========================================
Solver                           Paper reference
===============================  =========================================
:class:`SerialReferenceSolver`   Algorithm 1 (basic SpTRSV, host)
:class:`ScipyReferenceSolver`    external correctness oracle
:class:`LevelSetSolver`          Algorithm 2 + preprocessing (Section 2.2)
:class:`SyncFreeSolver`          Algorithm 3, warp-level (Section 2.3)
:class:`CuSparseProxySolver`     Section 2.4 black-box model
:class:`NaiveThreadSolver`       Section 3.3, Challenge 1 (deadlocks!)
:class:`TwoPhaseCapelliniSolver` Algorithm 4 (Section 4.2)
:class:`WritingFirstCapelliniSolver`  Algorithm 5 (Section 4.3)
:class:`AdaptiveCapelliniSolver` Section 4.4 warp/thread fusion
===============================  =========================================

plus :func:`select_solver`, the granularity-driven auto-selection the
paper's Figure 6 motivates.
"""

from repro.solvers.base import PreprocessInfo, SolveResult, SpTRSVSolver
from repro.solvers.reference import ScipyReferenceSolver, SerialReferenceSolver
from repro.solvers.levelset import LevelSetSolver
from repro.solvers.syncfree import SyncFreeSolver
from repro.solvers.syncfree_csc import SyncFreeCSCSolver
from repro.solvers.capellini import (
    TwoPhaseCapelliniSolver,
    WritingFirstCapelliniSolver,
)
from repro.solvers.naive_thread import NaiveThreadSolver
from repro.solvers.cusparse_proxy import CuSparseProxySolver
from repro.solvers.adaptive import AdaptiveCapelliniSolver
from repro.solvers.select import (
    ALL_SIMULATED_SOLVERS,
    FALLBACK_LADDER,
    select_solver,
    solver_chain,
)
from repro.solvers.upper import is_upper_triangular, reverse_matrix, solve_upper
from repro.solvers.host_parallel import (
    ExecutionPlan,
    HostLevelScheduleSolver,
    build_plan,
)
from repro.solvers.compiled import (
    HAVE_NUMBA,
    CompiledFusedSolver,
    CompiledPlan,
    build_compiled_plan,
    prefers_compiled,
)
from repro.solvers.multirhs import (
    MultiRHSResult,
    capellini_sptrsm,
    serial_sptrsm,
)

__all__ = [
    "PreprocessInfo",
    "SolveResult",
    "SpTRSVSolver",
    "SerialReferenceSolver",
    "ScipyReferenceSolver",
    "LevelSetSolver",
    "SyncFreeSolver",
    "SyncFreeCSCSolver",
    "CuSparseProxySolver",
    "NaiveThreadSolver",
    "TwoPhaseCapelliniSolver",
    "WritingFirstCapelliniSolver",
    "AdaptiveCapelliniSolver",
    "select_solver",
    "solver_chain",
    "ALL_SIMULATED_SOLVERS",
    "FALLBACK_LADDER",
    "is_upper_triangular",
    "reverse_matrix",
    "solve_upper",
    "ExecutionPlan",
    "HostLevelScheduleSolver",
    "build_plan",
    "HAVE_NUMBA",
    "CompiledFusedSolver",
    "CompiledPlan",
    "build_compiled_plan",
    "prefers_compiled",
    "MultiRHSResult",
    "capellini_sptrsm",
    "serial_sptrsm",
]
