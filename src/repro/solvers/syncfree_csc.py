"""The original CSC-native SyncFree SpTRSV (Liu et al., Euro-Par 2016).

The paper's Algorithm 3 presents the warp-level baseline in row/CSR
terms for exposition; the *actual* state-of-the-art implementation it
benchmarks against ([20, 21]) is column-based on CSC with atomics:

* preprocessing computes each row's in-degree (number of off-diagonal
  dependencies) — the cheap setup the paper's Table 1 charges to
  SyncFree, plus the CSR→CSC conversion when the input arrives in CSR
  (the format-conversion cost Capellini's third feature removes);
* one warp owns one *column* ``j``: it busy-waits until the consumer
  counter of ``j`` reaches ``in_degree[j]`` (all contributions from
  earlier columns have arrived), solves
  ``x_j = (b_j - left_sum_j) / d_jj``, then the lanes scatter
  ``l_ij * x_j`` into every consumer row's ``left_sum`` with atomic adds
  and atomically bump the consumers' counters.

Dependencies always flow from earlier columns (other warps), so the
blocking spin is deadlock-free — at warp granularity.  The scatter
phase is where hub columns (the rails of circuit matrices, the hubs of
graphs) serialize on atomics, one more reason warp-level designs sag on
the paper's high-granularity matrices.
"""

from __future__ import annotations

import time

import numpy as np

from repro.gpu.device import DeviceSpec
from repro.gpu.kernel import ALU, WARP_SYNC, SpinWait, ThreadCtx
from repro.perfmodel.calibration import preprocessing_model_ms
from repro.solvers import _sim
from repro.solvers.base import PreprocessInfo, SolveResult, SpTRSVSolver
from repro.sparse.convert import csr_to_csc
from repro.sparse.csr import CSRMatrix

__all__ = ["SyncFreeCSCSolver"]

COL_PTR = "col_ptr"
ROW_IDX = "row_idx"
LEFT_SUM = "left_sum"
COUNTER = "counter"


class SyncFreeCSCSolver(SpTRSVSolver):
    """Column-based warp-level SyncFree SpTRSV (the faithful baseline)."""

    name = "SyncFree-CSC"
    storage_format = "CSC"
    preprocessing_overhead = "low"
    requires_synchronization = False
    processing_granularity = "warp"

    def _solve(
        self, L: CSRMatrix, b: np.ndarray, device: DeviceSpec
    ) -> SolveResult:
        m = L.n_rows
        ws = device.warp_size

        # ---- preprocessing: format conversion + in-degrees ----------
        t0 = time.perf_counter()
        csc = csr_to_csc(L)
        rows = np.repeat(np.arange(m, dtype=np.int64), L.row_lengths())
        strict = L.col_idx < rows
        in_degree = np.bincount(rows[strict], minlength=m).astype(np.int64)
        prep_host = time.perf_counter() - t0

        engine = _sim.make_engine(device)
        mem = engine.memory
        mem.alloc(COL_PTR, csc.col_ptr)
        mem.alloc(ROW_IDX, csc.row_idx)
        mem.alloc(_sim.VALUES, csc.values)
        mem.alloc(_sim.RHS, np.array(b, dtype=np.float64, copy=True))
        mem.alloc(_sim.X, np.zeros(m, dtype=np.float64))
        mem.alloc(LEFT_SUM, np.zeros(m, dtype=np.float64))
        mem.alloc(COUNTER, np.zeros(m, dtype=np.int64), flags=True)

        def kernel(ctx: ThreadCtx):
            j = ctx.warp_id  # one warp per column / component
            if j >= m:
                return
            lane = ctx.lane_id
            lo = int(ctx.load(COL_PTR, j))
            hi = int(ctx.load(COL_PTR, j + 1))
            yield ALU

            # wait until every contribution to row j has been scattered
            # (lane 0 spins; lock-step holds the whole warp with it)
            if lane == 0:
                yield SpinWait(COUNTER, j, int(in_degree[j]))
                bj = ctx.load(_sim.RHS, j)
                sj = ctx.load(LEFT_SUM, j)
                diag = ctx.load(_sim.VALUES, lo)  # diagonal first in column
                xj = (bj - sj) / diag
                ctx.store(_sim.X, j, xj)
                ctx.shared_write(0, xj)
                yield ALU
                ctx.threadfence()
                yield ALU
            # broadcast x_j to the scattering lanes
            yield WARP_SYNC
            xj = ctx.shared_read(0)
            yield ALU

            # scatter: lanes stride over the column's consumers
            p = lo + 1 + lane
            while p < hi:
                i = int(ctx.load(ROW_IDX, p))
                v = ctx.load(_sim.VALUES, p)
                yield ALU
                ctx.atomic_add(LEFT_SUM, i, v * xj)
                yield ALU
                ctx.threadfence()
                yield ALU
                ctx.atomic_add(COUNTER, i, 1)
                yield ALU
                p += ctx.warp_size

        stats = engine.launch(kernel, m * ws, shared_per_warp=1)
        x = mem.array(_sim.X).copy()
        # completion check: every counter must have reached its in-degree
        if not np.array_equal(mem.array(COUNTER), in_degree):
            from repro.errors import SolverError

            raise SolverError(f"{self.name}: inconsistent consumer counters")
        return SolveResult(
            x=x,
            solver_name=self.name,
            exec_ms=device.cycles_to_ms(stats.cycles),
            preprocess=PreprocessInfo(
                description="CSR->CSC conversion + in-degree count + "
                "left_sum/counter malloc",
                modeled_ms=preprocessing_model_ms(
                    "syncfree", n_rows=m, nnz=L.nnz
                ),
                host_seconds=prep_host,
            ),
            stats=stats,
            device=device,
        )
