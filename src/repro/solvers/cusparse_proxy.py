"""Black-box model of the cuSPARSE SpTRSV (Section 2.4).

cuSPARSE is closed source; the paper treats it as a black box with an
observable profile: a short ``csrsv_analysis`` phase (Table 1), execution
comparable to — usually slightly worse than — SyncFree on high-granularity
matrices (Table 4), and the highest instruction-dependency stall
percentage of the three algorithms (Table 6: 33-45%).

We model it as a level-scheduled executor (the paper itself speculates a
level-style internal structure from the analysis phase) with a cheap
analysis pass and a *larger* inter-level overhead than our explicit
level-set solver — reproducing its observable profile without claiming to
know its internals.
"""

from __future__ import annotations

from repro.perfmodel.calibration import Calibration, DEFAULT_CALIBRATION
from repro.solvers.levelset import LevelSetSolver

__all__ = ["CuSparseProxySolver"]


class CuSparseProxySolver(LevelSetSolver):
    """cuSPARSE ``csrsv`` stand-in (see module docstring)."""

    name = "cuSPARSE"
    storage_format = "CSR"
    preprocessing_overhead = "low"
    requires_synchronization = True  # observable stalls suggest barriers
    processing_granularity = "unknown"

    _prep_model = "cusparse"

    def __init__(self, *, calibration: Calibration = DEFAULT_CALIBRATION) -> None:
        super().__init__(calibration=calibration)

    def _sync_cycles(self) -> float:
        return self.calibration.cusparse_sync_cycles
