"""Adaptive warp/thread fusion — the paper's Section 4.4 extension.

The paper sketches (and defers to future work) a combined algorithm: a
preprocessing pass scans the number of nonzero elements per row and
decides, for each set of consecutive rows, whether to process it at
thread level (CapelliniSpTRSV — thin rows) or warp level (SyncFree —
dense rows), using a threshold on the average nonzeros per row.

This implements that fusion as a single kernel launch:

* rows are grouped into aligned blocks of ``warp_size``;
* a block whose mean nonzero count is below ``threshold`` becomes one
  *thread-mode* warp (one lane per row, Writing-First control flow);
* a block at or above the threshold becomes ``warp_size`` *warp-mode*
  warps (one warp per row, SyncFree control flow with the shared-memory
  reduction) — safe to busy-wait because each row owns a whole warp, so
  every dependency is external to the spinning warp;
* warps are enqueued in row order, preserving the admission-order
  forward-progress guarantee.
"""

from __future__ import annotations

import time

import numpy as np

from repro.gpu.device import DeviceSpec
from repro.gpu.kernel import ALU, WARP_SYNC, Poll, SpinWait, ThreadCtx
from repro.solvers import _sim
from repro.solvers.base import PreprocessInfo, SolveResult, SpTRSVSolver
from repro.sparse.csr import CSRMatrix

__all__ = ["AdaptiveCapelliniSolver", "plan_row_blocks"]

#: Block modes in the launch plan.
THREAD_MODE = 0
WARP_MODE = 1


def plan_row_blocks(
    L: CSRMatrix, warp_size: int, threshold: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The Section 4.4 preprocessing: per-block granularity decisions.

    Returns ``(block_mode, warp_mode, warp_row)`` where ``block_mode[k]``
    is the decision for row block ``k`` and the latter two arrays define
    the launch plan: for warp ``w`` of the grid, ``warp_mode[w]`` is its
    execution mode and ``warp_row[w]`` its first (thread mode) or only
    (warp mode) row.
    """
    m = L.n_rows
    lengths = L.row_lengths()
    n_blocks = -(-m // warp_size)
    block_mode = np.empty(n_blocks, dtype=np.int8)
    warp_mode_list: list[int] = []
    warp_row_list: list[int] = []
    for k in range(n_blocks):
        lo = k * warp_size
        hi = min(lo + warp_size, m)
        mean_nnz = float(lengths[lo:hi].mean())
        if mean_nnz < threshold:
            block_mode[k] = THREAD_MODE
            warp_mode_list.append(THREAD_MODE)
            warp_row_list.append(lo)
        else:
            block_mode[k] = WARP_MODE
            for row in range(lo, hi):
                warp_mode_list.append(WARP_MODE)
                warp_row_list.append(row)
    return (
        block_mode,
        np.asarray(warp_mode_list, dtype=np.int8),
        np.asarray(warp_row_list, dtype=np.int64),
    )


class AdaptiveCapelliniSolver(SpTRSVSolver):
    """Section 4.4: per-row-block warp/thread granularity selection."""

    name = "Adaptive"
    storage_format = "CSR"
    preprocessing_overhead = "low"
    requires_synchronization = False
    processing_granularity = "thread/warp"

    def __init__(self, *, threshold: float = 8.0) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.threshold = threshold

    def _solve(
        self, L: CSRMatrix, b: np.ndarray, device: DeviceSpec
    ) -> SolveResult:
        m = L.n_rows
        ws = device.warp_size
        t0 = time.perf_counter()
        block_mode, warp_mode, warp_row = plan_row_blocks(L, ws, self.threshold)
        prep_host = time.perf_counter() - t0

        engine = _sim.make_engine(device)
        _sim.alloc_system(engine, L, b)

        def kernel(ctx: ThreadCtx):
            w = ctx.warp_id
            mode = warp_mode[w]
            lane = ctx.lane_id
            if mode == THREAD_MODE:
                # --- Writing-First Capellini for this lane's row -------
                i = int(warp_row[w]) + lane
                if i >= m:
                    return
                lo = int(ctx.load(_sim.ROW_PTR, i))
                hi = int(ctx.load(_sim.ROW_PTR, i + 1))
                yield ALU
                left_sum = 0.0
                j = lo
                col = int(ctx.load(_sim.COL_IDX, j))
                yield ALU
                while True:
                    if col == i:
                        bi = ctx.load(_sim.RHS, i)
                        diag = ctx.load(_sim.VALUES, hi - 1)
                        ctx.store(_sim.X, i, (bi - left_sum) / diag)
                        yield ALU
                        ctx.threadfence()
                        yield ALU
                        ctx.store(_sim.GET_VALUE, i, 1)
                        yield ALU
                        return
                    yield Poll(_sim.GET_VALUE, col, 1)
                    left_sum += ctx.load(_sim.VALUES, j) * ctx.load(_sim.X, col)
                    yield ALU
                    j += 1
                    col = int(ctx.load(_sim.COL_IDX, j))
            else:
                # --- SyncFree warp-level for this warp's row -----------
                i = int(warp_row[w])
                lo = int(ctx.load(_sim.ROW_PTR, i))
                hi = int(ctx.load(_sim.ROW_PTR, i + 1))
                yield ALU
                acc = 0.0
                j = lo + lane
                while j < hi - 1:
                    col = int(ctx.load(_sim.COL_IDX, j))
                    yield ALU
                    # every dependency is external: this warp owns row i
                    # alone, so blocking busy-wait cannot self-deadlock
                    yield SpinWait(_sim.GET_VALUE, col, 1)
                    acc += ctx.load(_sim.VALUES, j) * ctx.load(_sim.X, col)
                    yield ALU
                    j += ctx.warp_size
                ctx.shared_write(lane, acc)
                yield WARP_SYNC
                add_len = 1
                while add_len * 2 < ctx.warp_size:
                    add_len *= 2
                while add_len > 0:
                    if lane < add_len and lane + add_len < ctx.warp_size:
                        ctx.shared_write(
                            lane,
                            ctx.shared_read(lane)
                            + ctx.shared_read(lane + add_len),
                        )
                    yield WARP_SYNC
                    add_len //= 2
                if lane == 0:
                    bi = ctx.load(_sim.RHS, i)
                    diag = ctx.load(_sim.VALUES, hi - 1)
                    ctx.store(_sim.X, i, (bi - ctx.shared_read(0)) / diag)
                    yield ALU
                    ctx.threadfence()
                    yield ALU
                    ctx.store(_sim.GET_VALUE, i, 1)
                    yield ALU

        n_warps = len(warp_mode)
        stats = engine.launch(kernel, n_warps * ws, shared_per_warp=ws)
        _sim.assert_all_solved(engine, m, self.name)
        n_thread_blocks = int(np.count_nonzero(block_mode == THREAD_MODE))
        return SolveResult(
            x=engine.memory.array(_sim.X).copy(),
            solver_name=self.name,
            exec_ms=device.cycles_to_ms(stats.cycles),
            preprocess=PreprocessInfo(
                description=(
                    f"per-block nnz scan (threshold={self.threshold}): "
                    f"{n_thread_blocks}/{len(block_mode)} blocks thread-mode"
                ),
                # a single O(m) row-length scan — same order as SyncFree's
                # flag-array setup
                modeled_ms=2e-6 * m + 0.05,
                host_seconds=prep_host,
            ),
            stats=stats,
            device=device,
            extra={
                "thread_mode_blocks": n_thread_blocks,
                "warp_mode_blocks": int(len(block_mode)) - n_thread_blocks,
            },
        )
