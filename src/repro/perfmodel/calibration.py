"""Calibration constants shared by the analytic model and the solvers.

These constants anchor the *modeled* preprocessing and per-instruction
costs to the magnitudes the paper reports (Table 1 for preprocessing;
Table 4/6 for execution).  They scale axes only — every comparative claim
the reproduction makes (who wins, crossover location, speedup factors)
comes from structure, not from these numbers.

Anchors used (paper Table 1, Pascal):

* Level-set preprocessing on nlpkkt160 (~1.1e8 lower-triangular nnz):
  310 ms → ~2.8e-6 ms per nonzero.
* cuSPARSE analysis on the same matrix: 16.2 ms → ~1.5e-7 ms per nonzero.
* SyncFree preprocessing (flag malloc/memset) on 8.3e6 rows: 8.1 ms →
  ~1e-6 ms per row.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SolverError

__all__ = ["Calibration", "DEFAULT_CALIBRATION", "preprocessing_model_ms"]


@dataclass(frozen=True)
class Calibration:
    """Tunable cost constants (milliseconds unless noted)."""

    # --- preprocessing models (Table 1) ------------------------------
    #: Level-set preprocessing: per-nonzero DAG sweep cost.
    levelset_ms_per_nnz: float = 2.8e-6
    #: Level-set preprocessing: per-level bookkeeping cost.
    levelset_ms_per_level: float = 1.2e-3
    #: Level-set preprocessing: fixed overhead.
    levelset_ms_fixed: float = 0.4
    #: cuSPARSE csrsv_analysis: per-nonzero cost.
    cusparse_ms_per_nnz: float = 1.5e-7
    #: cuSPARSE csrsv_analysis: fixed overhead.
    cusparse_ms_fixed: float = 0.2
    #: SyncFree: flag-array malloc+memset per row.
    syncfree_ms_per_row: float = 1.0e-6
    #: SyncFree: fixed overhead (cudaMalloc latency).
    syncfree_ms_fixed: float = 0.27

    # --- execution models (analytic tier; cycles) --------------------
    #: Cycles per ordinary warp instruction (CPI baseline).
    cycles_per_instruction: float = 1.0
    #: Instruction slots per processed nonzero, thread-level kernels.
    thread_instr_per_nnz: float = 3.0
    #: Instruction slots per row of fixed overhead, thread-level kernels.
    thread_instr_per_row: float = 6.0
    #: Instruction slots per 32-element chunk, warp-level kernels.
    warp_instr_per_chunk: float = 3.0
    #: Fixed warp instructions per row, warp-level kernels (setup +
    #: log2(32) reduction steps + publish).
    warp_instr_per_row: float = 14.0
    #: Inter-level synchronization cost, level-set execution (cycles per
    #: level: kernel-launch / grid-sync latency).
    levelset_sync_cycles: float = 2600.0
    #: Inter-level overhead of the cuSPARSE-proxy execution (cycles).
    cusparse_sync_cycles: float = 3400.0
    #: Cycles a consumer waits after its producer's flag store before its
    #: own accumulation may proceed (flag propagation latency).
    flag_latency_cycles: float = 60.0
    #: Serial DRAM epochs a row needs beyond its element fetches (b,
    #: diagonal, fence + flag publish).
    publish_epochs: float = 2.0
    #: Fraction of the DRAM latency that synchronization-free algorithms
    #: pay between levels (flags propagate through L2, and consecutive
    #: levels overlap); level-set/cuSPARSE pay the full latency plus their
    #: explicit synchronization.
    flag_overlap: float = 0.5
    #: Two-Phase head-of-line multiplier per warp lane (Section 4.3): the
    #: measured 28.9x Writing-First advantage anchors this near 1.
    two_phase_hol_factor: float = 0.9
    #: Pipelined per-level floor for warp-level kernels (epochs): the
    #: flag-to-flag steady state of the SyncFree pipeline.
    warp_pipeline_floor_epochs: float = 1.2
    #: Unique bytes moved per processed nonzero (value + column index;
    #: x/flag/row_ptr traffic largely L2-resident), for the bandwidth
    #: roofline.
    bytes_per_nnz: float = 12.0
    #: Share of peak DRAM bandwidth reachable with SpTRSV's scattered,
    #: dependency-gated access pattern.
    roofline_efficiency: float = 0.8
    #: Multiplier on modeled compute cycles for every algorithm: real
    #: kernels pay cache-miss chains, TLB, replay and issue overheads the
    #: epoch model does not represent.  Calibrated so absolute GFLOPS
    #: land within a small factor of the paper's Table 4; it cancels in
    #: every ratio the reproduction actually claims.
    latency_overhead_factor: float = 5.0

    def __post_init__(self) -> None:
        for field_name, value in self.__dict__.items():
            if value < 0:
                raise SolverError(f"calibration {field_name} must be >= 0")


#: The calibration used everywhere unless a caller overrides it.
DEFAULT_CALIBRATION = Calibration()


def preprocessing_model_ms(
    algorithm: str,
    *,
    n_rows: int,
    nnz: int,
    n_levels: int = 0,
    calibration: Calibration = DEFAULT_CALIBRATION,
) -> float:
    """Modeled preprocessing time on the target platform (Table 1).

    ``algorithm`` is one of ``"levelset"``, ``"cusparse"``, ``"syncfree"``,
    ``"capellini"`` (the latter returns 0: the paper's "none").
    """
    c = calibration
    if algorithm == "levelset":
        return (
            c.levelset_ms_fixed
            + c.levelset_ms_per_nnz * nnz
            + c.levelset_ms_per_level * n_levels
        )
    if algorithm == "cusparse":
        return c.cusparse_ms_fixed + c.cusparse_ms_per_nnz * nnz
    if algorithm == "syncfree":
        return c.syncfree_ms_fixed + c.syncfree_ms_per_row * n_rows
    if algorithm == "capellini":
        return 0.0
    raise SolverError(f"unknown preprocessing model {algorithm!r}")
