"""Analytic (level-structure) performance estimator.

The cycle simulator is exact about the execution semantics but costs
O(total warp-steps) of host time — too slow for the paper's 245-matrix,
3-platform sweeps.  This estimator computes the same quantities from the
level structure with vectorized numpy, using the *same*
:class:`~repro.gpu.device.DeviceSpec` the simulator uses.  Tests validate
its ranking agreement against the simulator on small matrices.

Model (per level ``l`` with rows ``r``, work ``w_r`` in instruction
slots):

* **concurrency**: thread-level kernels run ``min(s_l, lanes)`` lanes at
  once, where ``lanes = sm_count * issue_width * warp_size`` is lane
  throughput per cycle and residency caps concurrency at
  ``sm_count * max_resident_warps * warp_size`` threads; warp-level
  kernels replace lanes by warps (a 1:``warp_size`` concurrency gap —
  the heart of the paper's Section 3.1 argument).
* **level time**: ``T_l = total_work_l / effective_rate + latency``,
  floored by the longest row of the level (the critical lane cannot be
  parallelized away).
* **roofline**: total time is floored by DRAM traffic over peak
  bandwidth.
* **pipelining**: synchronization-free algorithms overlap consecutive
  levels (flags release consumers early), modeled as a fixed overlap
  discount on the inter-level latency; level-set / cuSPARSE instead pay
  an explicit synchronization cost per level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.features import MatrixFeatures
from repro.errors import SolverError
from repro.gpu.device import DeviceSpec
from repro.perfmodel.calibration import (
    Calibration,
    DEFAULT_CALIBRATION,
    preprocessing_model_ms,
)

__all__ = ["EstimateResult", "AlgorithmProfile", "AnalyticModel"]

#: Algorithms the analytic tier models.
_ALGORITHMS = (
    "Capellini",
    "Capellini-TwoPhase",
    "SyncFree",
    "LevelSet",
    "cuSPARSE",
)


@dataclass(frozen=True)
class EstimateResult:
    """Analytic estimate of one algorithm on one matrix and platform."""

    algorithm: str
    platform: str
    exec_cycles: float
    exec_ms: float
    preprocess_ms: float
    gflops: float
    bandwidth_gbps: float
    instructions: float
    stall_fraction: float


@dataclass(frozen=True)
class AlgorithmProfile:
    """Per-algorithm knobs resolved from the calibration."""

    name: str
    thread_level: bool
    sync_cycles_per_level: float
    pipelined: bool  # synchronization-free: overlaps level latency

    @classmethod
    def for_algorithm(cls, name: str, cal: Calibration) -> "AlgorithmProfile":
        if name in ("Capellini", "Capellini-TwoPhase"):
            return cls(name, True, 0.0, True)
        if name == "SyncFree":
            return cls(name, False, 0.0, True)
        if name == "LevelSet":
            return cls(name, True, cal.levelset_sync_cycles, False)
        if name == "cuSPARSE":
            return cls(name, True, cal.cusparse_sync_cycles, False)
        raise SolverError(f"unknown algorithm {name!r}")


class AnalyticModel:
    """Vectorized estimator over a matrix's level structure."""

    def __init__(self, calibration: Calibration = DEFAULT_CALIBRATION) -> None:
        self.calibration = calibration

    # ------------------------------------------------------------------
    def estimate(
        self,
        features: MatrixFeatures,
        algorithm: str,
        device: DeviceSpec,
    ) -> EstimateResult:
        """Estimate ``algorithm`` solving the matrix on ``device``."""
        cal = self.calibration
        prof = AlgorithmProfile.for_algorithm(algorithm, cal)
        sched = features.schedule
        if features.n_rows == 0:
            raise SolverError("cannot estimate an empty matrix")

        # ---- round-based latency model --------------------------------
        # SpTRSV is dependency/latency-bound (the paper's achieved
        # bandwidth is ~1/6 of peak): per level, rows execute in "rounds"
        # bounded by residency (Section 3.1), and each row needs a serial
        # chain of DRAM epochs to finish.
        ws = device.warp_size
        lat = float(device.dram_latency_cycles)
        off_diag = np.maximum(features.row_lengths - 1, 0).astype(np.float64)
        if prof.thread_level:
            concurrency = float(device.resident_thread_capacity)
            # one lane consumes its elements serially, then publishes
            depth = cal.publish_epochs + off_diag
        else:
            concurrency = float(device.resident_warp_capacity)
            # warp_size lanes fetch an element batch per epoch; the
            # shared-memory reduction adds no DRAM epochs
            depth = cal.publish_epochs + np.ceil(off_diag / ws)
        depth_lvl = depth[sched.order]

        ptr = sched.level_ptr
        sizes = np.diff(ptr).astype(np.float64)
        sum_depth = np.add.reduceat(depth_lvl, ptr[:-1])
        max_depth = np.maximum.reduceat(depth_lvl, ptr[:-1])

        # Two-Phase head-of-line blocking (Section 4.3): phase-1 blocking
        # spins park the whole warp per lane wait, and phase 2 starts
        # warp-synchronously — per-warp depth degrades toward the *sum*
        # of its lanes' depths instead of running them concurrently.
        hol = 1.0
        if prof.name == "Capellini-TwoPhase":
            hol = cal.two_phase_hol_factor * ws

        # epochs per level: work/concurrency, with an algorithm-specific
        # floor.  Synchronization-free algorithms pipeline across levels
        # (a row pre-consumes elements as their producers finish), so
        # their floor is the steady-state consumption rate, not the full
        # depth of the slowest row; level-set/cuSPARSE relaunch per level
        # and do pay the slowest row in full.
        if prof.pipelined:
            if prof.thread_level:
                mean_off = np.add.reduceat(
                    off_diag[sched.order], ptr[:-1]
                ) / np.maximum(sizes, 1.0)
                floor = 1.0 + mean_off / ws  # serial consumption catches up
            else:
                floor = np.full_like(sizes, cal.warp_pipeline_floor_epochs)
            level_epochs = np.maximum(sum_depth / concurrency, floor) * hol
        else:
            level_epochs = np.maximum(sum_depth / concurrency, max_depth) * hol
        inter_level = (
            lat * (cal.flag_overlap if prof.pipelined else 1.0)
            + prof.sync_cycles_per_level
        )
        compute_cycles = float(
            (level_epochs * lat).sum() + inter_level * sched.n_levels
        ) * cal.latency_overhead_factor

        # instruction work (for the instruction estimate below)
        if prof.thread_level:
            work = cal.thread_instr_per_row + cal.thread_instr_per_nnz * off_diag
        else:
            work = cal.warp_instr_per_row + cal.warp_instr_per_chunk * np.ceil(
                off_diag / ws
            )
        total_work = np.add.reduceat(work[sched.order], ptr[:-1])

        # DRAM roofline (de-rated: scattered dependency-gated accesses
        # cannot stream at peak)
        bytes_moved = cal.bytes_per_nnz * features.nnz + 24.0 * features.n_rows
        bytes_per_cycle = (
            cal.roofline_efficiency
            * device.dram_bandwidth_gbps
            / device.clock_ghz
        )
        roofline_cycles = bytes_moved / bytes_per_cycle
        exec_cycles = max(compute_cycles, roofline_cycles)

        exec_ms = device.cycles_to_ms(exec_cycles)
        gflops = (2.0 * features.nnz) / (exec_ms * 1e6)
        bandwidth = bytes_moved / (exec_ms * 1e6)

        # instruction estimate (warp-granularity, incl. spin/poll slots)
        instructions = self._instruction_estimate(
            prof, device, work, total_work, exec_cycles
        )
        stall = self._stall_estimate(prof, sched.n_levels, exec_cycles, cal)

        prep_ms = preprocessing_model_ms(
            _prep_key(prof.name),
            n_rows=features.n_rows,
            nnz=features.nnz,
            n_levels=sched.n_levels,
            calibration=cal,
        )
        return EstimateResult(
            algorithm=prof.name,
            platform=device.name,
            exec_cycles=exec_cycles,
            exec_ms=exec_ms,
            preprocess_ms=prep_ms,
            gflops=gflops,
            bandwidth_gbps=bandwidth,
            instructions=instructions,
            stall_fraction=stall,
        )

    def estimate_all(
        self, features: MatrixFeatures, device: DeviceSpec
    ) -> dict[str, EstimateResult]:
        """Estimates for every modeled algorithm."""
        return {
            name: self.estimate(features, name, device) for name in _ALGORITHMS
        }

    # ------------------------------------------------------------------
    def _instruction_estimate(
        self,
        prof: AlgorithmProfile,
        device: DeviceSpec,
        work: np.ndarray,
        total_work: np.ndarray,
        exec_cycles: float,
    ) -> float:
        ws = device.warp_size
        if prof.thread_level:
            # warp instructions = per-aligned-warp max of lane work
            n = len(work)
            pad = (-n) % ws
            padded = np.pad(work, (0, pad))
            per_warp = padded.reshape(-1, ws).max(axis=1)
            base = float(per_warp.sum())
            # productive polls while waiting (small on wide levels)
            poll = 0.1 * exec_cycles if prof.pipelined else 0.0
            return base + poll
        # warp-level: every row is a warp; spinning warps burn slots
        base = float(total_work.sum())
        spin = 0.5 * exec_cycles
        return base + spin

    @staticmethod
    def _stall_estimate(
        prof: AlgorithmProfile,
        n_levels: int,
        exec_cycles: float,
        cal: Calibration,
    ) -> float:
        if prof.sync_cycles_per_level > 0.0:
            sync = prof.sync_cycles_per_level * n_levels
            return min(0.95, sync / max(exec_cycles, 1.0) + 0.25)
        if not prof.thread_level:
            return 0.30  # blocking spins dominate (Table 6: ~25-29%)
        if prof.name == "Capellini-TwoPhase":
            return 0.25
        return 0.13  # Writing-First (Table 6: 9.5-15.7%)


def _prep_key(algorithm: str) -> str:
    """Map an algorithm display name to its preprocessing-model key."""
    return {
        "Capellini": "capellini",
        "Capellini-TwoPhase": "capellini",
        "SyncFree": "syncfree",
        "LevelSet": "levelset",
        "cuSPARSE": "cusparse",
    }[algorithm]
