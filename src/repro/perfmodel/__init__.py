"""Performance models: calibration constants and the analytic estimator.

Two fidelity tiers exist in this repository (DESIGN.md, Section 6): the
cycle-level SIMT simulator in :mod:`repro.gpu`, and the vectorized
analytic estimator here, which shares the same
:class:`~repro.gpu.device.DeviceSpec` parameters and is used for the
paper's 245-matrix sweeps where cycle simulation would be prohibitive.
"""

from repro.perfmodel.calibration import (
    Calibration,
    DEFAULT_CALIBRATION,
    preprocessing_model_ms,
)
from repro.perfmodel.analytic import (
    AlgorithmProfile,
    AnalyticModel,
    EstimateResult,
)

__all__ = [
    "Calibration",
    "DEFAULT_CALIBRATION",
    "preprocessing_model_ms",
    "AlgorithmProfile",
    "AnalyticModel",
    "EstimateResult",
]
