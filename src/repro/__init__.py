"""CapelliniSpTRSV reproduction.

A from-scratch Python reproduction of *CapelliniSpTRSV: A Thread-Level
Synchronization-Free Sparse Triangular Solve on GPUs* (Su et al., ICPP
2020), built on a lock-step SIMT GPU simulator so the paper's execution
phenomena — warp residency limits, idle lanes, busy-wait spinning, and
intra-warp deadlock — are observable on a CPU-only machine.

Quickstart::

    import numpy as np
    from repro import datasets, solvers
    from repro.sparse import lower_triangular_system

    L = datasets.generate("circuit", n_rows=2000, seed=0)
    system = lower_triangular_system(L)
    solver = solvers.WritingFirstCapelliniSolver()
    result = solver.solve(system.L, system.b)
    assert np.allclose(result.x, system.x_true)

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-versus-measured record of every table and figure.
"""

from repro.version import __version__

__all__ = ["__version__"]
