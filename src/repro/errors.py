"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by this library derive from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SparseFormatError",
    "NotTriangularError",
    "SingularMatrixError",
    "SimulationError",
    "DeadlockError",
    "LaunchConfigError",
    "HazardError",
    "SolverError",
    "ExperimentError",
    "DatasetError",
    "ServeError",
    "UnknownMatrixError",
    "QueueFullError",
    "RequestTimeoutError",
    "TraceSchemaError",
    "ClusterError",
    "WorkerDiedError",
    "JournalError",
]


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class SparseFormatError(ReproError):
    """A sparse matrix container was constructed from inconsistent arrays."""


class NotTriangularError(SparseFormatError):
    """An operation required a (unit) lower triangular matrix and got
    something else — e.g. an upper-triangular entry, or a missing diagonal."""


class SingularMatrixError(ReproError):
    """A triangular solve encountered a zero (or missing) diagonal entry."""


class SimulationError(ReproError):
    """Base class for failures inside the SIMT GPU simulator."""


class DeadlockError(SimulationError):
    """Every resident warp is blocked and no external event can unblock them.

    This is the error the paper's Challenge 1 (Section 3.3) is about: a
    naive thread-level kernel that busy-waits on a value produced by another
    lane of the *same* warp can never make progress under lock-step
    execution.  The simulator detects that condition instead of hanging.
    """

    def __init__(self, message: str, *, cycle: int | None = None,
                 blocked_warps: tuple[int, ...] = ()):  # pragma: no cover - trivial
        super().__init__(message)
        self.cycle = cycle
        self.blocked_warps = blocked_warps


class LaunchConfigError(SimulationError):
    """A kernel launch was configured with impossible parameters."""


class HazardError(SimulationError):
    """A dynamic sanitizer observed a synchronization hazard.

    Raised by :class:`repro.analysis.sanitize.Sanitizer` in ``raise``
    mode the moment a kernel violates the sync-free publication protocol
    (flag store without a fenced value store, racy ``x`` load, double
    publish, ...).  Carries the offending :class:`repro.analysis.hazards.
    Hazard` — which records the lane, warp, cycle and array location —
    plus the tail of the warp's tracer timeline when a tracer was active.
    """

    def __init__(self, hazard, *, trace_tail: tuple = ()):
        super().__init__(hazard.format())
        self.hazard = hazard
        self.trace_tail = trace_tail


class SolverError(ReproError):
    """A solver failed to produce a solution."""


class ExperimentError(ReproError):
    """An experiment harness was mis-configured or failed to run."""


class DatasetError(ReproError):
    """A synthetic dataset generator was given invalid parameters."""


class ServeError(ReproError):
    """Base class for failures in the serving layer (:mod:`repro.serve`)."""


class UnknownMatrixError(ServeError):
    """A solve request referenced a matrix the registry does not hold
    (never registered, or evicted by the LRU memory budget)."""


class QueueFullError(ServeError):
    """The engine's bounded request queue is full (backpressure).

    Callers should shed load or retry later; the engine never buffers
    unboundedly."""


class RequestTimeoutError(ServeError):
    """A solve request did not complete within its deadline.

    The underlying executor work is not interrupted (threads cannot be
    cancelled); the result is discarded when it arrives."""


class TraceSchemaError(ServeError):
    """A TraceLog JSONL dump declares a schema this build cannot read.

    Raised by :func:`repro.serve.replay.load_events` when the header
    line's ``schema`` tag is unknown — a clear signal to upgrade (or
    re-record) instead of a ``KeyError`` deep inside replay."""


class ClusterError(ServeError):
    """Base class for failures in the multi-worker serve cluster
    (:mod:`repro.serve.cluster`): protocol violations, arena segment
    corruption, a worker pool that cannot be (re)started."""


class WorkerDiedError(ClusterError):
    """A shard worker process died with requests in flight.

    In-flight requests on the dead worker fail with this error; the
    router respawns the worker (re-attaching its shard's shared-memory
    plans, never rebuilding them) and subsequent requests are served
    normally.  Callers may simply retry."""


class JournalError(ReproError):
    """A solve journal cannot be opened at all.

    Raised by :class:`repro.obs.journal.JournalReader` only when the
    journal *as a whole* is missing (no directory, no segment files) —
    the ``journal report`` exit-2 condition.  Damaged segment *content*
    (torn tails, corrupt lines) never raises; it is skipped and counted
    so a crash during journaling still yields every intact record."""
