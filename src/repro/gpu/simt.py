"""The SIMT engine: SM scheduler, residency, watches, deadlock detection.

One :class:`SIMTEngine` instance models one device executing one or more
kernel launches against a shared :class:`~repro.gpu.memory.GlobalMemory`.

Scheduling model (see DESIGN.md):

* Warps are admitted to SMs **in grid order** as residency slots free up —
  the property synchronization-free SpTRSV needs for forward progress
  (row ``i`` only depends on rows ``j < i``, whose warps are admitted no
  later than ``i``'s).
* Each cycle, every SM issues up to ``issue_width`` warp instructions,
  round-robin over its runnable warps.  Runnable warps that could not
  issue record contention stalls.
* Warps blocked in a :class:`~repro.gpu.kernel.SpinWait` or sleeping on
  an all-lanes-failed :class:`~repro.gpu.kernel.Poll` are parked on
  memory watches instead of being rescanned every cycle; the cycles they
  spend parked are credited as spin instructions (and, for blocking
  spins, dependency stalls) when they wake.
* If a cycle passes in which no SM issued and no warp was admitted while
  work remains, no store can ever happen again — the launch is deadlocked
  and :class:`~repro.errors.DeadlockError` is raised (this is exactly how
  the paper's Challenge-1 naive kernel fails).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Generator

import numpy as np

from repro.errors import DeadlockError, LaunchConfigError, SimulationError
from repro.gpu.counters import KernelStats, LaneCounters
from repro.gpu.device import DeviceSpec
from repro.gpu.kernel import ThreadCtx
from repro.gpu.memory import GlobalMemory
from repro.gpu.warp import Warp, WarpState
from repro.obs.profile import INTRA_WARP_WAIT, MEM_STALL, SPIN_WAIT

__all__ = ["SIMTEngine"]

KernelFn = Callable[[ThreadCtx], Generator]


class _SM:
    """Per-SM scheduler state."""

    __slots__ = ("index", "resident", "runnable")

    def __init__(self, index: int) -> None:
        self.index = index
        self.resident = 0
        self.runnable: deque[Warp] = deque()


class SIMTEngine:
    """Lock-step SIMT executor for one simulated device.

    Parameters
    ----------
    device:
        Architectural parameters (SM count, warp size, residency...).
    max_cycles:
        Safety bound; exceeded only by a livelocked kernel, which raises
        :class:`~repro.errors.SimulationError` instead of hanging.
    """

    def __init__(self, device: DeviceSpec, *, max_cycles: int = 50_000_000) -> None:
        self.device = device
        self.max_cycles = max_cycles
        self.counters = LaneCounters()
        self.memory = GlobalMemory(self.counters)
        #: optional :class:`repro.gpu.trace.Tracer`; zero overhead if None
        self.tracer = None
        #: optional :class:`repro.obs.profiler.Profiler`; every launch
        #: records per-warp phase attribution into it (zero overhead —
        #: one ``is None`` check per hook site — when unset)
        self.profiler = None
        self._sanitizer = None

    @property
    def sanitizer(self):
        """Optional :class:`repro.analysis.sanitize.Sanitizer`.

        Assigning one binds it to this engine's memory immediately, so
        allocations performed *before* :meth:`launch` (solvers upload
        their arrays first) are already observed.
        """
        return self._sanitizer

    @sanitizer.setter
    def sanitizer(self, s) -> None:
        self._sanitizer = s
        if s is None:
            self.memory.observer = None
        else:
            s.bind(self.memory)
            self.memory.observer = s

    # ------------------------------------------------------------------
    def launch(
        self,
        kernel: KernelFn,
        n_threads: int,
        *,
        shared_per_warp: int = 0,
    ) -> KernelStats:
        """Run ``kernel`` over ``n_threads`` lanes to completion.

        Returns the launch's :class:`~repro.gpu.counters.KernelStats`.
        Traffic counters accumulate on the engine across launches; the
        returned stats cover only this launch (deltas).
        """
        if n_threads <= 0:
            raise LaunchConfigError(f"n_threads must be positive, got {n_threads}")
        dev = self.device
        ws = dev.warp_size
        total_warps = -(-n_threads // ws)  # ceil division

        mem = self.memory
        c0 = _traffic_snapshot(self.counters)

        sms = [_SM(i) for i in range(dev.sm_count)]
        next_admit = 0
        done_warps = 0
        parked_warps: set[int] = set()
        latency = dev.dram_latency_cycles
        # (wake_cycle, seq, warp, sm) — warps parked on DRAM latency
        timed: list[tuple[int, int, Warp, _SM]] = []
        timed_seq = 0

        # mutable cells shared with watch callbacks
        state = _LaunchState()
        tracer = self.tracer
        profiler = self.profiler
        rec = profiler.begin_launch(total_warps) if profiler is not None else None
        counters = self.counters
        sanitizer = self._sanitizer
        if sanitizer is not None and sanitizer.tracer is None:
            sanitizer.tracer = tracer

        def make_warp(warp_id: int, sm: _SM) -> Warp:
            lanes = []
            base = warp_id * ws
            n_lanes = min(ws, n_threads - base)
            shared = (
                np.zeros(shared_per_warp, dtype=np.float64)
                if shared_per_warp
                else None
            )
            for lane in range(n_lanes):
                ctx = ThreadCtx(base + lane, warp_id, lane, ws, shared, mem)
                lanes.append(kernel(ctx))
            return Warp(warp_id, lanes, mem)

        def arm_spin_watch(
            w: Warp, sm: _SM, name: str, idx: int, lane: int, expected: float
        ) -> None:
            def cb() -> None:
                if w.warp_id not in parked_warps:
                    return
                if w.resolve_spin(lane):
                    _credit_unpark(w, state, rec, counters, blocked=True)
                    parked_warps.discard(w.warp_id)
                    sm.runnable.append(w)
                    if tracer is not None:
                        tracer.record(state.cycle, w.warp_id, "wake")
                elif w.lane_still_spinning(lane):
                    # predicate still false (store of a different value):
                    # keep watching the same location.
                    mem.watch(name, idx, cb)

            mem.watch(name, idx, cb)
            # Close the store-before-watch race: the producing store may
            # have landed earlier this very cycle, before the watch existed.
            if mem.peek(name, idx) == expected:
                cb()

        def arm_sleep_watch(
            w: Warp, sm: _SM, name: str, idx: int
        ) -> None:
            def cb() -> None:
                if w.warp_id not in parked_warps:
                    return
                if w.wake_from_sleep():
                    _credit_unpark(w, state, rec, counters, blocked=False)
                    parked_warps.discard(w.warp_id)
                    sm.runnable.append(w)
                    if tracer is not None:
                        tracer.record(state.cycle, w.warp_id, "wake")

            mem.watch(name, idx, cb)

        cycle = 0
        while done_warps < total_warps:
            if cycle >= self.max_cycles:
                raise SimulationError(
                    f"kernel exceeded max_cycles={self.max_cycles} "
                    f"({done_warps}/{total_warps} warps retired) — livelock?"
                )
            state.cycle = cycle
            if sanitizer is not None:
                sanitizer.cycle = cycle
            # release warps whose DRAM latency has elapsed
            while timed and timed[0][0] <= cycle:
                _, _, tw, tsm = heapq.heappop(timed)
                tsm.runnable.append(tw)
                if rec is not None:
                    rec.unpark(cycle, tw.warp_id)
            progressed = False
            for sm in sms:
                # admit pending warps in grid order
                while (
                    sm.resident < dev.max_resident_warps
                    and next_admit < total_warps
                ):
                    w = make_warp(next_admit, sm)
                    sm.runnable.append(w)
                    sm.resident += 1
                    next_admit += 1
                    progressed = True
                    if tracer is not None:
                        tracer.record(cycle, w.warp_id, "admit")
                    if rec is not None:
                        rec.admit(cycle, w.warp_id)
                # issue up to issue_width warp instructions
                issued = 0
                n_runnable_before = len(sm.runnable)
                budget = min(dev.issue_width, n_runnable_before)
                while issued < budget and sm.runnable:
                    w = sm.runnable.popleft()
                    outcome = w.step()
                    issued += 1
                    if tracer is not None:
                        tracer.record(cycle, w.warp_id, "issue")
                    if rec is not None:
                        rec.issue(cycle, w.warp_id)
                    state.warp_instructions += 1
                    state.active_lane_slots += outcome.live_lanes
                    state.idle_lane_slots += ws - outcome.live_lanes
                    if outcome.state is WarpState.RUNNABLE:
                        if outcome.dram_touched and latency > 0:
                            # the step issued DRAM loads: park the warp for
                            # the memory latency; other resident warps hide
                            # it, exactly as on hardware
                            timed_seq += 1
                            heapq.heappush(
                                timed, (cycle + latency, timed_seq, w, sm)
                            )
                            state.mem_stall_cycles += latency
                            if tracer is not None:
                                tracer.record(cycle, w.warp_id, "mem")
                            if rec is not None:
                                rec.park(cycle, w.warp_id, MEM_STALL, 0)
                        else:
                            sm.runnable.append(w)
                    elif outcome.state is WarpState.DONE:
                        sm.resident -= 1
                        done_warps += 1
                        if tracer is not None:
                            tracer.record(cycle, w.warp_id, "done")
                        if rec is not None:
                            rec.done(cycle, w.warp_id)
                    elif outcome.state is WarpState.BLOCKED:
                        w.parked_since = cycle
                        parked_warps.add(w.warp_id)
                        if tracer is not None:
                            tracer.record(cycle, w.warp_id, "block")
                        if rec is not None:
                            rec.park(cycle, w.warp_id, SPIN_WAIT,
                                     w.waiting_lanes)
                        for name, idx, lane, expected in outcome.watch_lanes:
                            arm_spin_watch(w, sm, name, idx, lane, expected)
                    else:  # SLEEPING
                        w.parked_since = cycle
                        parked_warps.add(w.warp_id)
                        if tracer is not None:
                            tracer.record(cycle, w.warp_id, "sleep")
                        if rec is not None:
                            rec.park(cycle, w.warp_id, INTRA_WARP_WAIT,
                                     w.waiting_lanes)
                        for name, idx, _lane, _expected in outcome.watch_lanes:
                            arm_sleep_watch(w, sm, name, idx)
                        # Close the store-before-watch race for polls.
                        if w.warp_id in parked_warps and w.any_poll_satisfied():
                            if w.wake_from_sleep():
                                _credit_unpark(w, state, rec, counters,
                                               blocked=False)
                                parked_warps.discard(w.warp_id)
                                sm.runnable.append(w)
                if issued:
                    progressed = True
                # contention: runnable warps that did not get an issue slot
                # this cycle (warps woken mid-cycle start counting next
                # cycle; warps that issued and stayed runnable are not
                # stalled).
                state.stall_cycles += max(0, n_runnable_before - budget)

            if not progressed:
                if timed:
                    # nothing issuable until the next memory wake-up:
                    # fast-forward the clock instead of idling cycle by
                    # cycle (host-time optimization, no semantic effect)
                    cycle = max(cycle + 1, int(timed[0][0]))
                    continue
                raise DeadlockError(
                    "no warp could issue and no warp could be admitted: "
                    f"{len(parked_warps)} warp(s) parked forever "
                    f"(warps {sorted(parked_warps)[:8]}...) — intra-warp "
                    "busy-wait dependency? (paper Section 3.3, Challenge 1)",
                    cycle=cycle,
                    blocked_warps=tuple(sorted(parked_warps)[:32]),
                )
            cycle += 1

        c1 = _traffic_snapshot(self.counters)
        if rec is not None:
            profiler.end_launch(rec, cycle)
        return KernelStats(
            cycles=cycle,
            warp_instructions=state.warp_instructions,
            spin_instructions=state.spin_instructions,
            stall_cycles=state.stall_cycles,
            active_lane_slots=state.active_lane_slots,
            idle_lane_slots=state.idle_lane_slots,
            warps_launched=total_warps,
            dram_bytes=(c1[0] - c0[0]) + (c1[1] - c0[1]),
            cache_bytes=c1[2] - c0[2],
            flag_polls=c1[3] - c0[3],
            fences=c1[4] - c0[4],
            mem_stall_cycles=state.mem_stall_cycles,
            spin_wakes=c1[5] - c0[5],
            poll_wakes=c1[6] - c0[6],
        )


class _LaunchState:
    """Mutable per-launch accounting shared with watch callbacks."""

    __slots__ = (
        "cycle",
        "warp_instructions",
        "spin_instructions",
        "stall_cycles",
        "mem_stall_cycles",
        "active_lane_slots",
        "idle_lane_slots",
    )

    def __init__(self) -> None:
        self.cycle = 0
        self.warp_instructions = 0
        self.spin_instructions = 0
        self.stall_cycles = 0
        self.mem_stall_cycles = 0
        self.active_lane_slots = 0
        self.idle_lane_slots = 0


def _credit_unpark(
    w: Warp, state: _LaunchState, rec, counters: LaneCounters, *, blocked: bool
) -> None:
    """Credit the cycles a warp spent parked.

    A blocking spin executes a load+test every cycle (spin instructions)
    and is a dependency stall; a sleeping poll warp would likewise issue
    poll iterations, but those are the *productive* polling of Algorithm
    5 — counted as spin instructions only.  ``rec`` (the profiler's
    launch recorder, may be None) closes the warp's open wait interval;
    the wake counters feed :class:`KernelStats`.
    """
    duration = max(0, state.cycle - w.parked_since)
    state.spin_instructions += duration
    if blocked:
        state.stall_cycles += duration
        counters.spin_wakes += 1
    else:
        counters.poll_wakes += 1
    if rec is not None:
        rec.unpark(state.cycle, w.warp_id)
    w.parked_since = -1


def _traffic_snapshot(
    c: LaneCounters,
) -> tuple[int, int, int, int, int, int, int]:
    return (
        c.dram_bytes_read,
        c.dram_bytes_written,
        c.cache_bytes_read,
        c.flag_polls,
        c.fences,
        c.spin_wakes,
        c.poll_wakes,
    )
