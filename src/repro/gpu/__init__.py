"""A lock-step SIMT GPU simulator.

This package is the substitute for the CUDA GPUs the paper runs on (see
DESIGN.md, Section 2).  It models exactly the execution properties the
paper's arguments rest on:

* **Lock-step warps** — lanes of a warp advance together, one instruction
  per warp per issue; a lane blocked in a busy-wait loop blocks its whole
  warp (the source of the paper's Challenge 1 deadlock).
* **Bounded residency** — each streaming multiprocessor hosts at most
  ``max_resident_warps`` warps; a wide level therefore executes in several
  rounds (Section 3.1's first under-utilization cause).
* **Warp-order scheduling** — warps are admitted to SMs in grid order,
  which is the property synchronization-free SpTRSVs rely on for forward
  progress.
* **Counters** — instructions issued, spin cycles, stall cycles, idle-lane
  slots and DRAM/cache traffic, feeding the paper's Figures 7/8 and
  Table 6 metrics.

Kernels are plain Python generator functions: one generator per lane,
``yield`` marks one instruction slot, and the yielded value selects the
instruction kind (ALU step, blocking spin, productive poll).
"""

from repro.gpu.device import (
    DeviceSpec,
    PASCAL_GTX1080,
    TURING_RTX2080TI,
    VOLTA_V100,
    SIM_SMALL,
    SIM_TINY,
    PLATFORMS,
)
from repro.gpu.counters import KernelStats, LaneCounters
from repro.gpu.memory import GlobalMemory
from repro.gpu.kernel import ALU, WARP_SYNC, Poll, SpinWait, ThreadCtx
from repro.gpu.simt import SIMTEngine
from repro.gpu.trace import Tracer, render_timeline

__all__ = [
    "DeviceSpec",
    "PASCAL_GTX1080",
    "VOLTA_V100",
    "TURING_RTX2080TI",
    "SIM_SMALL",
    "SIM_TINY",
    "PLATFORMS",
    "KernelStats",
    "LaneCounters",
    "GlobalMemory",
    "ALU",
    "WARP_SYNC",
    "Poll",
    "SpinWait",
    "ThreadCtx",
    "SIMTEngine",
    "Tracer",
    "render_timeline",
]
