"""Warp-timeline tracing for the SIMT engine.

A :class:`Tracer` attached to an engine records every warp state
transition (admitted, issued, blocked on a spin, sleeping on polls,
parked on DRAM latency, woken, retired) with its cycle.  The renderer
compresses the timeline into a fixed-width ASCII chart — one row per
warp — which makes the papers' execution arguments *visible*: SyncFree
warps spend their rows spinning (``s``), Capellini warps alternate issue
(``#``) and memory (``m``), the naive kernel's rows freeze in ``s``
forever.

Usage::

    engine = SIMTEngine(device)
    tracer = Tracer()
    engine.tracer = tracer
    engine.launch(kernel, n_threads)
    print(render_timeline(tracer, width=72))
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

__all__ = ["Tracer", "TraceEvent", "render_timeline"]

#: Event kinds, in rendering priority order (later wins within a bucket).
ISSUE = "issue"
ADMIT = "admit"
BLOCK = "block"      # SpinWait (dependency stall)
SLEEP = "sleep"      # all-lanes-failed Poll
MEM = "mem"          # parked on DRAM latency
WAKE = "wake"
DONE = "done"
HAZARD = "hazard"    # sanitizer-reported hazard (repro.analysis.sanitize)

_SYMBOLS = {
    ISSUE: "#",
    BLOCK: "s",
    SLEEP: "z",
    MEM: "m",
    HAZARD: "!",
}


@dataclass(frozen=True)
class TraceEvent:
    """One recorded state transition."""

    cycle: int
    warp_id: int
    kind: str


@dataclass
class Tracer:
    """Collects engine events; cheap appends, analysis after the run."""

    events: list[TraceEvent] = field(default_factory=list)
    max_events: int = 2_000_000

    def record(self, cycle: int, warp_id: int, kind: str) -> None:
        if len(self.events) < self.max_events:
            self.events.append(TraceEvent(cycle, warp_id, kind))

    # ------------------------------------------------------------------
    def by_warp(self) -> dict[int, list[TraceEvent]]:
        out: dict[int, list[TraceEvent]] = defaultdict(list)
        for ev in self.events:
            out[ev.warp_id].append(ev)
        return dict(out)

    def last_cycle(self) -> int:
        return max((ev.cycle for ev in self.events), default=0)

    def summary(self) -> dict[str, int]:
        """Event counts by kind."""
        counts: dict[str, int] = defaultdict(int)
        for ev in self.events:
            counts[ev.kind] += 1
        return dict(counts)

    def tail(self, warp_id: int | None = None, n: int = 8) -> tuple[TraceEvent, ...]:
        """The last ``n`` events, optionally restricted to one warp.

        Hazard reports attach this as provenance: the events leading up
        to the offending access show *how* the warp got there."""
        if warp_id is None:
            return tuple(self.events[-n:])
        picked: list[TraceEvent] = []
        for ev in reversed(self.events):
            if ev.warp_id == warp_id:
                picked.append(ev)
                if len(picked) == n:
                    break
        return tuple(reversed(picked))


def render_timeline(
    tracer: Tracer,
    *,
    width: int = 64,
    max_warps: int = 24,
) -> str:
    """ASCII chart: one row per warp, ``width`` cycle buckets.

    Symbols: ``#`` issued, ``s`` blocked in a busy-wait, ``z`` sleeping
    on polls, ``m`` parked on memory latency, ``.`` retired,
    `` `` (space) not yet admitted.
    """
    per_warp = tracer.by_warp()
    if not per_warp:
        return "(no trace events)"
    end = tracer.last_cycle() + 1
    bucket = max(1, -(-end // width))

    lines = [
        f"warp timeline — {end} cycles, {bucket} cycles/column "
        f"(#=issue s=spin z=sleep m=mem !=hazard .=done)"
    ]
    shown = sorted(per_warp)[:max_warps]
    for warp_id in shown:
        events = sorted(per_warp[warp_id], key=lambda e: e.cycle)
        # walk the event list, tracking the warp's state per bucket
        row = [" "] * width
        state: str | None = None
        done_at: int | None = None
        admitted_at: int | None = None
        idx = 0
        for b in range(width):
            b_end = (b + 1) * bucket
            issued_here = False
            hazard_here = False
            while idx < len(events) and events[idx].cycle < b_end:
                ev = events[idx]
                idx += 1
                if ev.kind == ADMIT:
                    admitted_at = ev.cycle
                    state = None
                elif ev.kind == ISSUE:
                    issued_here = True
                    state = None
                elif ev.kind == HAZARD:
                    hazard_here = True
                elif ev.kind in (BLOCK, SLEEP, MEM):
                    state = ev.kind
                elif ev.kind == WAKE:
                    state = None
                elif ev.kind == DONE:
                    done_at = ev.cycle
            if hazard_here:
                row[b] = "!"
            elif done_at is not None and done_at < b_end - bucket:
                row[b] = "."
            elif issued_here:
                row[b] = "#"
            elif state in _SYMBOLS:
                row[b] = _SYMBOLS[state]
            elif admitted_at is not None:
                row[b] = "-"
        lines.append(f"  w{warp_id:<4d} |{''.join(row)}|")
    if len(per_warp) > max_warps:
        lines.append(f"  ... ({len(per_warp) - max_warps} more warps)")
    return "\n".join(lines)
