"""Simulated global memory with traffic accounting and store watches.

Memory is sequentially consistent (Python-level interleaving at warp-step
granularity defines the order), which is stronger than a real GPU — but
every kernel in this repository still issues the ``threadfence`` the paper's
pseudocode requires before publishing a flag, and a test asserts the
value store precedes the flag store, so the kernels remain correct under
the weaker real-hardware model.

Traffic model: accesses to arrays registered as *streamed* count as DRAM
traffic at element granularity; re-polls of *flag* arrays count as cache
traffic after the first touch of a location (spin loops hit L1/L2 on real
parts, and `nvprof`'s DRAM counters — what the paper's Figure 7 reports —
do not see them).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable

import numpy as np

from repro.errors import SimulationError
from repro.gpu.counters import LaneCounters

__all__ = ["GlobalMemory"]

WatchKey = tuple[str, int]


class GlobalMemory:
    """Named numpy arrays with per-access accounting and store callbacks."""

    #: DRAM transaction (sector) size in bytes; 32 B on modern NVIDIA parts.
    SECTOR_BYTES = 32

    def __init__(self, counters: LaneCounters) -> None:
        self._arrays: dict[str, np.ndarray] = {}
        self._flag_arrays: set[str] = set()
        self._touched: dict[str, np.ndarray] = {}
        self.counters = counters
        self._watchers: dict[WatchKey, list[Callable[[], None]]] = defaultdict(list)
        # coalescing batch: distinct (array, sector) pairs touched during
        # the current warp step; None outside a batch (host-style access)
        self._batch: set[tuple[str, int]] | None = None
        #: optional access observer (a :class:`repro.analysis.sanitize.
        #: Sanitizer`); every counted lane access is reported to it.
        #: ``None`` keeps the hot paths at one attribute test.
        self.observer = None

    # ------------------------------------------------------------------
    # coalescing batches (driven by Warp.step)
    # ------------------------------------------------------------------
    def begin_access_batch(self) -> None:
        """Start a warp-step coalescing window.

        Within one window, loads that fall into the same DRAM sector of
        the same array are merged into one transaction: the first load
        charges a full sector, the rest are free (they ride the same
        transaction).  This models the coalescing asymmetry between
        warp-level kernels (lanes read consecutive elements of one row)
        and thread-level kernels (lanes read scattered rows).
        """
        self._batch = set()

    def end_access_batch(self) -> None:
        self._batch = None

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def alloc(self, name: str, array: np.ndarray, *, flags: bool = False) -> np.ndarray:
        """Register ``array`` under ``name``.

        ``flags=True`` marks the array as a synchronization-flag array:
        repeated loads of one location are charged to cache, not DRAM,
        and stores to it fire watch callbacks (used for spin wake-ups).
        """
        if name in self._arrays:
            raise SimulationError(f"array {name!r} already allocated")
        array = np.ascontiguousarray(array)
        self._arrays[name] = array
        if flags:
            self._flag_arrays.add(name)
            self._touched[name] = np.zeros(len(array), dtype=bool)
        if self.observer is not None:
            self.observer.on_alloc(name, array, flags=flags)
        return array

    def array(self, name: str) -> np.ndarray:
        """Raw backing array (host-side inspection; not counted)."""
        return self._arrays[name]

    # ------------------------------------------------------------------
    # counted accesses (called from thread contexts)
    # ------------------------------------------------------------------
    def load(self, name: str, idx: int) -> float:
        arr = self._arrays[name]
        if name in self._flag_arrays:
            touched = self._touched[name]
            if touched[idx]:
                self.counters.cache_bytes_read += arr.itemsize
            else:
                touched[idx] = True
                self.counters.dram_bytes_read += arr.itemsize
                self.counters.dram_load_events += 1
            self.counters.flag_polls += 1
        elif self._batch is None:
            # host-style access: exact byte accounting, one event each
            self.counters.dram_bytes_read += arr.itemsize
            self.counters.dram_load_events += 1
        else:
            sector = (name, (int(idx) * arr.itemsize) // self.SECTOR_BYTES)
            if sector in self._batch:
                self.counters.cache_bytes_read += arr.itemsize
            else:
                self._batch.add(sector)
                self.counters.dram_bytes_read += self.SECTOR_BYTES
                self.counters.dram_load_events += 1
        value = arr[idx]
        if self.observer is not None:
            self.observer.on_load(name, idx, value)
        return value

    def store(self, name: str, idx: int, value) -> None:
        self._store(name, idx, value, atomic=False)

    def _store(self, name: str, idx: int, value, *, atomic: bool) -> None:
        arr = self._arrays[name]
        arr[idx] = value
        self.counters.dram_bytes_written += arr.itemsize
        if self.observer is not None:
            # observe before wake-ups fire, so a raising sanitizer stops
            # the hazardous publish from unblocking consumers
            self.observer.on_store(name, idx, arr[idx], atomic=atomic)
        key = (name, int(idx))
        watchers = self._watchers.pop(key, None)
        if watchers:
            for cb in watchers:
                cb()

    def atomic_add(self, name: str, idx: int, value) -> float:
        """Atomic read-modify-write; returns the *old* value (CUDA
        ``atomicAdd`` semantics).

        The simulator interleaves lanes at warp-step granularity and a
        step's lane actions run one after another on the host, so the
        read-modify-write is indivisible by construction; the method
        exists to make the kernel's intent explicit, count the traffic,
        and fire watches (the CSC SyncFree algorithm's counter increments
        must wake spinning consumer warps).
        """
        arr = self._arrays[name]
        old = arr[idx]
        self.counters.dram_bytes_read += arr.itemsize
        self._store(name, idx, old + value, atomic=True)
        return old

    def fence(self) -> None:
        """Record a ``threadfence`` (memory is sequentially consistent, so
        the fence has no reordering to prevent — but the sanitizers check
        kernels issue it where real hardware would need it)."""
        self.counters.fences += 1
        if self.observer is not None:
            self.observer.on_fence()

    def peek(self, name: str, idx: int):
        """Uncounted load — used by the engine to evaluate spin predicates."""
        return self._arrays[name][idx]

    # ------------------------------------------------------------------
    # watches
    # ------------------------------------------------------------------
    def watch(self, name: str, idx: int, callback: Callable[[], None]) -> None:
        """Invoke ``callback`` once, on the next store to ``name[idx]``."""
        if name not in self._arrays:
            raise SimulationError(f"cannot watch unknown array {name!r}")
        self._watchers[(name, int(idx))].append(callback)

    @property
    def pending_watches(self) -> int:
        return sum(len(v) for v in self._watchers.values())
