"""Performance counters collected by the SIMT engine.

The counter names map onto the metrics the paper reports:

* ``warp_instructions`` + ``spin_instructions`` → Figure 8(a) "number of
  GPU instructions executed" (spinning executes real load/test
  instructions on hardware, so both are counted).
* ``stall_cycles`` / (``stall_cycles`` + issue slots used) → Figure 8(b)
  "percentage of instruction dependency stalls".
* ``dram_bytes_read`` + ``dram_bytes_written`` over runtime → Figure 7
  bandwidth utilization.
* ``idle_lane_slots`` / lane slots → the warp under-utilization of
  Section 3.1 (idle threads in lock-step warps).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LaneCounters", "KernelStats"]


@dataclass
class LaneCounters:
    """Mutable counters shared by every thread context of one launch."""

    dram_bytes_read: int = 0
    dram_bytes_written: int = 0
    cache_bytes_read: int = 0
    shared_bytes: int = 0
    flag_polls: int = 0
    fences: int = 0
    #: DRAM load *events* (cache-served flag re-polls excluded); the warp
    #: state machine diffs this across a step to decide whether the step
    #: pays the device's DRAM latency.
    dram_load_events: int = 0
    #: Warp wake-ups out of a blocking SpinWait (a producer's store
    #: resolved a cross-warp dependency).
    spin_wakes: int = 0
    #: Warp wake-ups out of an all-lanes-failed Poll sleep (Algorithm 5's
    #: productive polling resuming).
    poll_wakes: int = 0


@dataclass(frozen=True)
class KernelStats:
    """Immutable summary of one kernel launch.

    Attributes
    ----------
    cycles:
        Global cycles from launch to the retirement of the last warp.
    warp_instructions:
        Warp-granularity instructions issued (one per warp-step).
    spin_instructions:
        Instruction slots burned while warps were blocked in busy-wait
        spins (hardware would execute a load+test per slot).
    stall_cycles:
        Cycles a resident, ready warp could not issue (issue-width
        contention) plus cycles blocked in spins.
    active_lane_slots:
        Sum over issued warp instructions of live (unfinished) lanes.
    idle_lane_slots:
        Sum over issued warp instructions of dead/exited lanes — the
        lock-step waste Capellini eliminates.
    warps_launched:
        Total warps in the grid.
    dram_bytes:
        DRAM traffic (read + write), excluding cached flag re-polls.
    cache_bytes:
        Traffic served by cache in our model (flag re-polls).
    """

    cycles: int
    warp_instructions: int
    spin_instructions: int
    stall_cycles: int
    active_lane_slots: int
    idle_lane_slots: int
    warps_launched: int
    dram_bytes: int
    cache_bytes: int
    flag_polls: int = 0
    fences: int = 0
    #: Cycles warps spent parked on DRAM latency.  Kept separate from
    #: ``stall_cycles``: the paper's Figure 8(b) metric is *instruction
    #: dependency* stalls (spins, barriers), not memory latency, which
    #: resident-warp oversubscription hides on real parts.
    mem_stall_cycles: int = 0
    #: Warp wake-ups out of blocking spins / poll sleeps during this
    #: launch (how often stores re-scheduled a parked warp).
    spin_wakes: int = 0
    poll_wakes: int = 0

    @property
    def total_instructions(self) -> int:
        """Executed instructions including spin slots (Figure 8(a))."""
        return self.warp_instructions + self.spin_instructions

    @property
    def stall_fraction(self) -> float:
        """Stalled share of issue opportunities (Figure 8(b)), in [0, 1]."""
        denom = self.warp_instructions + self.stall_cycles
        if denom == 0:
            return 0.0
        return self.stall_cycles / denom

    @property
    def lane_utilization(self) -> float:
        """Live-lane share of issued lane slots, in (0, 1]."""
        denom = self.active_lane_slots + self.idle_lane_slots
        if denom == 0:
            return 1.0
        return self.active_lane_slots / denom

    def merged_with(self, other: "KernelStats") -> "KernelStats":
        """Combine stats of two sequential launches (cycles add)."""
        return KernelStats(
            cycles=self.cycles + other.cycles,
            warp_instructions=self.warp_instructions + other.warp_instructions,
            spin_instructions=self.spin_instructions + other.spin_instructions,
            stall_cycles=self.stall_cycles + other.stall_cycles,
            active_lane_slots=self.active_lane_slots + other.active_lane_slots,
            idle_lane_slots=self.idle_lane_slots + other.idle_lane_slots,
            warps_launched=self.warps_launched + other.warps_launched,
            dram_bytes=self.dram_bytes + other.dram_bytes,
            cache_bytes=self.cache_bytes + other.cache_bytes,
            flag_polls=self.flag_polls + other.flag_polls,
            fences=self.fences + other.fences,
            mem_stall_cycles=self.mem_stall_cycles + other.mem_stall_cycles,
            spin_wakes=self.spin_wakes + other.spin_wakes,
            poll_wakes=self.poll_wakes + other.poll_wakes,
        )
