"""Kernel programming model: thread contexts and instruction yields.

A kernel is a Python generator function taking a single
:class:`ThreadCtx`.  Each ``yield`` marks one instruction slot of that
lane; the yielded value selects the instruction kind:

``ALU`` (or ``None``)
    One ordinary instruction (arithmetic, address math, branch...).
    Memory accesses performed through ``ctx.load`` / ``ctx.store`` between
    yields attach to the surrounding instruction slots.

``SpinWait(name, idx, expected)``
    A *blocking* busy-wait: the lane loops ``while mem[name][idx] !=
    expected``.  Under lock-step execution the whole warp stops advancing
    until every spinning lane's predicate holds — this is the semantics
    that makes the paper's naive thread-level kernel deadlock (Challenge
    1, Section 3.3) and that the warp-level SyncFree algorithm can use
    safely because its dependencies always live in other warps.

``Poll(name, idx, expected)``
    A *productive* poll: one load+test of the flag.  If it fails, the lane
    retries on subsequent warp-steps, but the other lanes of the warp keep
    advancing — exactly the control flow of Writing-First Capellini
    (Algorithm 5), where a failed flag check falls through to the
    last-element test and loops.

Example — a kernel where each thread squares one element::

    def square(ctx: ThreadCtx):
        i = ctx.global_id
        if i >= n:
            return
        v = ctx.load("data", i)
        yield ALU
        ctx.store("out", i, v * v)
        yield ALU

    engine.launch(square, n_threads=n)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.gpu.memory import GlobalMemory

__all__ = ["ALU", "WARP_SYNC", "SpinWait", "Poll", "ThreadCtx"]


class _ALUInstruction:
    """Singleton sentinel for an ordinary instruction slot."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "ALU"


#: The ordinary-instruction sentinel; ``yield ALU`` and ``yield None`` are
#: equivalent (the engine treats ``None`` as ALU).
ALU = _ALUInstruction()


class _WarpSyncInstruction:
    """Singleton sentinel for an intra-warp barrier.

    Models the warp-synchronous convergence point classic warp-level code
    relies on (``__syncwarp`` on modern CUDA, implicit lock-step on older
    parts).  The SyncFree reduction (Algorithm 3, lines 13-17) needs it:
    lanes must not read a neighbour's ``left_sum`` slot before it is
    written.  A lane yielding ``WARP_SYNC`` waits until every live lane of
    its warp reaches the barrier.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "WARP_SYNC"


#: The intra-warp barrier sentinel (see :class:`_WarpSyncInstruction`).
WARP_SYNC = _WarpSyncInstruction()


@dataclass(frozen=True)
class SpinWait:
    """Blocking busy-wait on ``mem[name][idx] == expected`` (see module doc)."""

    name: str
    idx: int
    expected: float = 1


@dataclass(frozen=True)
class Poll:
    """One productive poll of ``mem[name][idx] == expected`` (see module doc)."""

    name: str
    idx: int
    expected: float = 1


class ThreadCtx:
    """Per-lane view of the machine handed to kernel generators.

    Attributes
    ----------
    global_id:
        Flat thread index across the grid.
    warp_id:
        Flat warp index (``global_id // warp_size``).
    lane_id:
        Index within the warp (``global_id % warp_size``).
    warp_size:
        Device warp width.
    shared:
        Per-warp scratch array (the model of shared memory used by the
        SyncFree reduction, Algorithm 3 lines 13-17); ``None`` when the
        launch requested no shared memory.
    """

    __slots__ = ("global_id", "warp_id", "lane_id", "warp_size", "shared", "_mem")

    def __init__(
        self,
        global_id: int,
        warp_id: int,
        lane_id: int,
        warp_size: int,
        shared: np.ndarray | None,
        mem: "GlobalMemory",
    ) -> None:
        self.global_id = global_id
        self.warp_id = warp_id
        self.lane_id = lane_id
        self.warp_size = warp_size
        self.shared = shared
        self._mem = mem

    def load(self, name: str, idx: int):
        """Counted load from global memory."""
        return self._mem.load(name, int(idx))

    def store(self, name: str, idx: int, value) -> None:
        """Counted store to global memory (fires spin/poll wake-ups)."""
        self._mem.store(name, int(idx), value)

    def atomic_add(self, name: str, idx: int, value) -> float:
        """Atomic add to global memory; returns the old value."""
        return self._mem.atomic_add(name, int(idx), value)

    def shared_read(self, idx: int):
        """Counted read of the per-warp shared scratch."""
        assert self.shared is not None, "launch had shared_per_warp=0"
        self._mem.counters.shared_bytes += self.shared.itemsize
        return self.shared[idx]

    def shared_write(self, idx: int, value) -> None:
        """Counted write of the per-warp shared scratch."""
        assert self.shared is not None, "launch had shared_per_warp=0"
        self._mem.counters.shared_bytes += self.shared.itemsize
        self.shared[idx] = value

    def threadfence(self) -> None:
        """Memory fence (Algorithm 3 line 21 / Algorithm 5 line 15).

        The simulator's memory is sequentially consistent, so the fence
        only needs to be *recorded*; tests assert each kernel fences
        between publishing a component value and raising its flag, and
        the opt-in memory-order sanitizer checks the ordering per lane
        (see :mod:`repro.analysis.sanitize`).
        """
        self._mem.fence()
