"""Device specifications.

``DeviceSpec`` carries the handful of architectural parameters the
simulator and the analytic performance model share.  The three *paper*
presets mirror Table 3's platforms at their real scale (used by the
analytic model for the large sweeps); the ``SIM_*`` presets are reduced-
scale devices for the cycle simulator so case-study solves finish in
seconds of host time while keeping the same warp size and per-SM shape.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "DeviceSpec",
    "PASCAL_GTX1080",
    "VOLTA_V100",
    "TURING_RTX2080TI",
    "SIM_SMALL",
    "SIM_TINY",
    "PLATFORMS",
]


@dataclass(frozen=True)
class DeviceSpec:
    """Architectural parameters of a (simulated) GPU.

    Attributes
    ----------
    name:
        Human-readable platform name.
    sm_count:
        Number of streaming multiprocessors.
    warp_size:
        Lanes per warp (32 on every real NVIDIA part; the paper's Figure 2
        walkthrough uses 3, which the simulator supports for tests).
    max_resident_warps:
        Warps resident per SM — the bound that forces wide levels into
        multiple execution rounds (Section 3.1).
    issue_width:
        Warp instructions an SM can issue per cycle.
    clock_ghz:
        Core clock used to convert cycles to milliseconds.
    dram_bandwidth_gbps:
        Peak DRAM bandwidth (GB/s), used by the analytic model's memory
        roofline and to sanity-check Figure 7 outputs.
    dram_latency_cycles:
        Latency charged (analytically) to a dependent DRAM access chain.
    """

    name: str
    sm_count: int
    warp_size: int = 32
    max_resident_warps: int = 64
    issue_width: int = 4
    clock_ghz: float = 1.5
    dram_bandwidth_gbps: float = 320.0
    dram_latency_cycles: int = 400

    def __post_init__(self) -> None:
        if self.sm_count <= 0:
            raise ValueError("sm_count must be positive")
        if self.warp_size <= 0:
            raise ValueError("warp_size must be positive")
        if self.max_resident_warps <= 0:
            raise ValueError("max_resident_warps must be positive")
        if self.issue_width <= 0:
            raise ValueError("issue_width must be positive")
        if self.clock_ghz <= 0:
            raise ValueError("clock_ghz must be positive")

    @property
    def resident_warp_capacity(self) -> int:
        """Device-wide number of simultaneously resident warps."""
        return self.sm_count * self.max_resident_warps

    @property
    def resident_thread_capacity(self) -> int:
        """Device-wide number of simultaneously resident threads."""
        return self.resident_warp_capacity * self.warp_size

    def cycles_to_ms(self, cycles: float) -> float:
        """Convert a cycle count to milliseconds at this device's clock."""
        return cycles / (self.clock_ghz * 1e6)

    def scaled(self, factor: float) -> "DeviceSpec":
        """A device with ``sm_count`` scaled (min 1), other parameters kept.

        Used by ablation benches that sweep machine width.
        """
        return replace(
            self,
            name=f"{self.name}-x{factor:g}",
            sm_count=max(1, int(round(self.sm_count * factor))),
        )


#: GTX 1080 (Pascal, Table 3): 20 SMs, GDDR5X.
PASCAL_GTX1080 = DeviceSpec(
    name="Pascal",
    sm_count=20,
    max_resident_warps=64,
    issue_width=4,
    clock_ghz=1.61,
    dram_bandwidth_gbps=320.0,
    dram_latency_cycles=450,
)

#: Tesla V100 (Volta, Table 3): 80 SMs, HBM2.
VOLTA_V100 = DeviceSpec(
    name="Volta",
    sm_count=80,
    max_resident_warps=64,
    issue_width=4,
    clock_ghz=1.38,
    dram_bandwidth_gbps=900.0,
    dram_latency_cycles=400,
)

#: RTX 2080 Ti (Turing, Table 3): 68 SMs, GDDR6, 32 resident warps/SM.
TURING_RTX2080TI = DeviceSpec(
    name="Turing",
    sm_count=68,
    max_resident_warps=32,
    issue_width=4,
    clock_ghz=1.545,
    dram_bandwidth_gbps=616.0,
    dram_latency_cycles=420,
)

#: Reduced-scale device for the cycle simulator: same per-SM shape as
#: Pascal, 4 SMs.  Case-study solves on ~10k-row matrices run in seconds.
SIM_SMALL = DeviceSpec(
    name="SimSmall",
    sm_count=4,
    max_resident_warps=16,
    issue_width=2,
    clock_ghz=1.0,
    dram_bandwidth_gbps=64.0,
    dram_latency_cycles=120,
)

#: Minimal device for unit tests and the Figure 2 walkthrough (2 warps of
#: 3 threads, exactly the paper's illustration).
SIM_TINY = DeviceSpec(
    name="SimTiny",
    sm_count=1,
    warp_size=3,
    max_resident_warps=2,
    issue_width=1,
    clock_ghz=1.0,
    dram_bandwidth_gbps=8.0,
    dram_latency_cycles=20,
)

#: The paper's three evaluation platforms (Table 3), keyed by name.
PLATFORMS: dict[str, DeviceSpec] = {
    "Pascal": PASCAL_GTX1080,
    "Volta": VOLTA_V100,
    "Turing": TURING_RTX2080TI,
}
