"""Warp state machine for the lock-step engine.

A :class:`Warp` owns one generator per lane and advances them together:
one call to :meth:`Warp.step` is one warp instruction.  The step logic
implements the three instruction kinds of :mod:`repro.gpu.kernel` and
reports the warp's resulting state to the scheduler, including the memory
locations the scheduler must watch to wake the warp again.
"""

from __future__ import annotations

import enum
from typing import Generator, Iterable

from repro.errors import SimulationError
from repro.gpu.kernel import ALU, WARP_SYNC, Poll, SpinWait
from repro.gpu.memory import GlobalMemory

__all__ = ["Warp", "WarpState", "StepOutcome"]


class WarpState(enum.Enum):
    """Scheduler-visible warp states."""

    RUNNABLE = "runnable"
    BLOCKED = "blocked"      # >=1 lane in an unsatisfied SpinWait
    SLEEPING = "sleeping"    # every live lane in an unsatisfied Poll
    DONE = "done"


class _LaneState(enum.Enum):
    READY = 0     # advance the generator on the next step
    POLLING = 1   # re-evaluate a Poll predicate on the next step
    SPINNING = 2  # parked in a SpinWait (warp is BLOCKED)
    SYNCING = 3   # waiting at a WARP_SYNC barrier
    DONE = 4


class StepOutcome:
    """What one warp instruction did (consumed by the scheduler).

    ``watch_lanes`` lists ``(array, index, lane, expected)`` tuples the
    scheduler must arm watches for — spin watches when the warp BLOCKED,
    poll watches when it went SLEEPING.  ``dram_touched`` is True when
    any lane loaded from DRAM during the step: the scheduler parks the
    warp for the device's DRAM latency before its next issue (other
    resident warps hide the latency, exactly as on hardware).
    """

    __slots__ = ("state", "live_lanes", "watch_lanes", "dram_touched")

    def __init__(
        self,
        state: WarpState,
        live_lanes: int,
        watch_lanes: tuple[tuple[str, int, int, float], ...] = (),
        dram_touched: bool = False,
    ) -> None:
        self.state = state
        self.live_lanes = live_lanes
        self.watch_lanes = watch_lanes
        self.dram_touched = dram_touched


class Warp:
    """One warp: ``warp_size`` lane generators advancing in lock-step."""

    __slots__ = (
        "warp_id",
        "mem",
        "_lanes",
        "_lane_state",
        "_pending",
        "spin_unresolved",
        "state",
        "parked_since",
    )

    def __init__(
        self,
        warp_id: int,
        lanes: Iterable[Generator],
        mem: GlobalMemory,
    ) -> None:
        self.warp_id = warp_id
        self.mem = mem
        self._lanes: list[Generator | None] = list(lanes)
        self._lane_state = [_LaneState.READY] * len(self._lanes)
        # _pending[i] holds the unsatisfied Poll/SpinWait request of lane i
        self._pending: list[Poll | SpinWait | None] = [None] * len(self._lanes)
        self.spin_unresolved = 0
        self.state = WarpState.RUNNABLE
        # cycle at which the warp blocked or slept (for stall accounting)
        self.parked_since = -1

    # ------------------------------------------------------------------
    @property
    def n_lanes(self) -> int:
        return len(self._lanes)

    @property
    def live_lanes(self) -> int:
        return sum(1 for s in self._lane_state if s is not _LaneState.DONE)

    @property
    def waiting_lanes(self) -> int:
        """Lanes holding an unsatisfied Poll/SpinWait request right now.

        Read by the profiler when the warp parks: it records how many
        lanes gated the wait, which the Chrome-trace export surfaces on
        each wait slice (one gating lane vs. a whole warp of them are
        very different tuning targets).
        """
        return sum(1 for p in self._pending if p is not None)

    # ------------------------------------------------------------------
    def step(self) -> StepOutcome:
        """Execute one warp instruction: advance every live lane once."""
        if self.state is not WarpState.RUNNABLE:
            raise SimulationError(
                f"warp {self.warp_id} stepped while {self.state.value}"
            )
        mem = self.mem
        observer = mem.observer
        mem.begin_access_batch()  # coalesce this step's loads per sector
        dram_events_before = mem.counters.dram_load_events
        lane_state = self._lane_state
        pending = self._pending
        live = 0
        spin_watches: list[tuple[str, int, int, float]] = []
        poll_watches: list[tuple[str, int, int, float]] = []
        any_progress = False  # a lane did something other than a failed poll
        retired = 0  # lanes that exited during this step

        n_syncing = 0
        for i, gen in enumerate(self._lanes):
            st = lane_state[i]
            if st is _LaneState.DONE:
                continue
            live += 1
            if observer is not None:
                # attribute this lane's memory accesses for hazard reports
                observer.set_lane(self.warp_id, i)
            if st is _LaneState.SYNCING:
                n_syncing += 1
                continue
            if st is _LaneState.POLLING:
                req = pending[i]
                assert isinstance(req, Poll)
                # one poll iteration: load + test (counted as a flag load)
                if mem.load(req.name, req.idx) == req.expected:
                    lane_state[i] = _LaneState.READY
                    pending[i] = None
                    any_progress = True
                else:
                    poll_watches.append((req.name, req.idx, i, req.expected))
                continue
            if st is _LaneState.SPINNING:  # pragma: no cover - defensive
                raise SimulationError("spinning lane inside a runnable warp")
            # READY: advance the generator by one instruction.
            assert gen is not None
            try:
                instr = next(gen)
            except StopIteration:
                lane_state[i] = _LaneState.DONE
                self._lanes[i] = None
                retired += 1
                any_progress = True
                continue
            if instr is None or instr is ALU:
                any_progress = True
                continue
            if instr is WARP_SYNC:
                lane_state[i] = _LaneState.SYNCING
                n_syncing += 1
                any_progress = True
                continue
            if type(instr) is Poll:
                # the yield itself is the first poll iteration
                if mem.load(instr.name, instr.idx) == instr.expected:
                    any_progress = True
                else:
                    lane_state[i] = _LaneState.POLLING
                    pending[i] = instr
                    poll_watches.append((instr.name, instr.idx, i, instr.expected))
                continue
            if type(instr) is SpinWait:
                if mem.load(instr.name, instr.idx) == instr.expected:
                    any_progress = True
                else:
                    lane_state[i] = _LaneState.SPINNING
                    pending[i] = instr
                    spin_watches.append((instr.name, instr.idx, i, instr.expected))
                continue
            raise SimulationError(f"kernel yielded unknown instruction {instr!r}")

        if observer is not None:
            observer.clear_lane()
        mem.end_access_batch()
        live_after = live - retired
        if n_syncing and n_syncing == live_after:
            # barrier complete: release every lane; they advance next step
            for i, st in enumerate(lane_state):
                if st is _LaneState.SYNCING:
                    lane_state[i] = _LaneState.READY
        dram_touched = mem.counters.dram_load_events > dram_events_before
        if spin_watches:
            self.state = WarpState.BLOCKED
            self.spin_unresolved = len(spin_watches)
            return StepOutcome(self.state, live, tuple(spin_watches), dram_touched)
        if live_after == 0:
            self.state = WarpState.DONE
            return StepOutcome(self.state, live, (), dram_touched)
        if not any_progress and poll_watches:
            # Every live lane failed its poll this step: the warp would
            # keep issuing identical poll iterations, so it sleeps until
            # any watched flag is stored (the skipped iterations are
            # credited as spin instructions by the scheduler).
            self.state = WarpState.SLEEPING
            return StepOutcome(self.state, live, tuple(poll_watches), dram_touched)
        return StepOutcome(self.state, live, (), dram_touched)

    # ------------------------------------------------------------------
    # wake-up paths (called by the scheduler's watch callbacks)
    # ------------------------------------------------------------------
    def resolve_spin(self, lane: int) -> bool:
        """A watched location of ``lane``'s SpinWait was stored.

        Re-validates the predicate (stores are wake *hints*): on success
        the lane becomes READY; returns True when the whole warp is
        unblocked.  On failure the caller must re-arm the watch.
        """
        req = self._pending[lane]
        if not isinstance(req, SpinWait):  # already resolved another way
            return self.state is WarpState.RUNNABLE
        if self.mem.peek(req.name, req.idx) != req.expected:
            return False
        observer = self.mem.observer
        if observer is not None:
            # the wake path validates via uncounted peek; tell the race
            # detector this lane has now observed the flag value
            observer.on_sync_observed(
                self.warp_id, lane, req.name, req.idx, req.expected
            )
        self._lane_state[lane] = _LaneState.READY
        self._pending[lane] = None
        self.spin_unresolved -= 1
        if self.spin_unresolved == 0:
            self.state = WarpState.RUNNABLE
            return True
        return False

    def lane_still_spinning(self, lane: int) -> bool:
        """True while ``lane`` is parked in an unsatisfied SpinWait."""
        return self._lane_state[lane] is _LaneState.SPINNING

    def any_poll_satisfied(self) -> bool:
        """True if any parked Poll predicate currently holds (used by the
        scheduler to close the store-before-watch race)."""
        for i, st in enumerate(self._lane_state):
            if st is _LaneState.POLLING:
                req = self._pending[i]
                assert isinstance(req, Poll)
                if self.mem.peek(req.name, req.idx) == req.expected:
                    return True
        return False

    def wake_from_sleep(self) -> bool:
        """Any watched poll location was stored: resume issuing polls."""
        if self.state is WarpState.SLEEPING:
            self.state = WarpState.RUNNABLE
            return True
        return False
