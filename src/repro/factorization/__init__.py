"""Incomplete factorization substrate.

The paper motivates SpTRSV through direct methods and preconditioned
iterative solvers (Section 1): in both, the triangular systems come from
a factorization.  This package provides the standard ILU(0) incomplete
factorization so the library covers the full pipeline a downstream user
runs — factor a general sparse matrix, then hammer the triangular
factors with SpTRSV inside an iterative method.
"""

from repro.factorization.ilu0 import ILU0Factors, ilu0

__all__ = ["ILU0Factors", "ilu0"]
