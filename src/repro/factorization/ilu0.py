"""ILU(0): incomplete LU factorization with zero fill-in.

Standard IKJ formulation (Saad, *Iterative Methods for Sparse Linear
Systems*, Alg. 10.4): the factors share the sparsity pattern of ``A`` —
``L`` keeps the strictly-lower entries (unit diagonal implied), ``U``
the upper triangle including the diagonal.  The output containers are
shaped for this library's solvers: ``L`` is unit lower triangular with
the diagonal stored (last element of each row), ready for any
:class:`~repro.solvers.base.SpTRSVSolver`; ``U`` solves through
:func:`repro.solvers.upper.solve_upper`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SingularMatrixError, SparseFormatError
from repro.sparse.coo import COOMatrix
from repro.sparse.convert import coo_to_csr, csr_to_coo
from repro.sparse.csr import CSRMatrix

__all__ = ["ILU0Factors", "ilu0"]


@dataclass(frozen=True)
class ILU0Factors:
    """The two triangular factors of ``A ≈ L @ U``.

    ``L`` is unit lower triangular (diagonal stored explicitly as 1.0),
    ``U`` is upper triangular with the pivots on its diagonal.
    """

    L: CSRMatrix
    U: CSRMatrix

    def apply(self, b: np.ndarray, *, solver=None, device=None) -> np.ndarray:
        """Solve ``L U x = b`` (one preconditioner application).

        Uses the host reference solver by default; pass a simulated
        ``solver`` (and optionally a ``device``) to run both triangular
        solves through the GPU simulator.
        """
        from repro.gpu.device import SIM_SMALL
        from repro.solvers.reference import SerialReferenceSolver
        from repro.solvers.upper import solve_upper

        solver = solver or SerialReferenceSolver()
        device = device or SIM_SMALL
        y = solver.solve(self.L, np.asarray(b, dtype=np.float64),
                         device=device).x
        return solve_upper(solver, self.U, y, device=device)

    def residual_pattern_norm(self, A: CSRMatrix) -> float:
        """``max |(L@U - A)| over A's pattern`` — the ILU(0) invariant
        (the product matches A exactly on A's nonzero positions)."""
        from repro.sparse.convert import csr_to_dense

        prod = csr_to_dense(self.L) @ csr_to_dense(self.U)
        dense_a = csr_to_dense(A)
        rows = np.repeat(np.arange(A.n_rows), A.row_lengths())
        return float(
            np.max(np.abs(prod[rows, A.col_idx] - dense_a[rows, A.col_idx]))
        )


def ilu0(A: CSRMatrix) -> ILU0Factors:
    """Compute the ILU(0) factorization of a square matrix.

    Requires every diagonal entry of ``A`` to be structurally present
    and numerically nonzero after elimination (no pivoting — the
    standard ILU(0) restriction).
    """
    n = A.n_rows
    if not A.is_square:
        raise SparseFormatError(f"ILU(0) needs a square matrix, got {A.shape}")
    row_ptr, col_idx = A.row_ptr, A.col_idx
    values = A.values.copy()

    # position of each (row, col) element for O(1) updates
    pos: dict[tuple[int, int], int] = {}
    rows = np.repeat(np.arange(n, dtype=np.int64), A.row_lengths())
    for p, (r, c) in enumerate(zip(rows, col_idx)):
        pos[(int(r), int(c))] = p

    diag_pos = np.full(n, -1, dtype=np.int64)
    for i in range(n):
        dp = pos.get((i, i), -1)
        if dp < 0:
            raise SingularMatrixError(
                f"ILU(0) needs an explicit diagonal; row {i} has none"
            )
        diag_pos[i] = dp

    # IKJ elimination restricted to A's pattern
    for i in range(1, n):
        lo, hi = int(row_ptr[i]), int(row_ptr[i + 1])
        for kp in range(lo, hi):
            k = int(col_idx[kp])
            if k >= i:
                break
            pivot = values[diag_pos[k]]
            if pivot == 0.0:
                raise SingularMatrixError(
                    f"zero pivot at row {k} during ILU(0)"
                )
            factor = values[kp] / pivot
            values[kp] = factor
            # subtract factor * U(k, j) for j > k, within row i's pattern
            k_lo, k_hi = int(row_ptr[k]), int(row_ptr[k + 1])
            for jp in range(k_lo, k_hi):
                j = int(col_idx[jp])
                if j <= k:
                    continue
                target = pos.get((i, j))
                if target is not None:
                    values[target] -= factor * values[jp]

    return ILU0Factors(L=_lower_factor(A, values), U=_upper_factor(A, values))


def _lower_factor(A: CSRMatrix, values: np.ndarray) -> CSRMatrix:
    coo = csr_to_coo(A.with_values(values))
    keep = coo.cols < coo.rows
    n = A.n_rows
    rows = np.concatenate([coo.rows[keep], np.arange(n, dtype=np.int64)])
    cols = np.concatenate([coo.cols[keep], np.arange(n, dtype=np.int64)])
    vals = np.concatenate([coo.values[keep], np.ones(n)])
    return coo_to_csr(COOMatrix(n, n, rows, cols, vals))


def _upper_factor(A: CSRMatrix, values: np.ndarray) -> CSRMatrix:
    coo = csr_to_coo(A.with_values(values))
    keep = coo.cols >= coo.rows
    return coo_to_csr(
        COOMatrix(A.n_rows, A.n_cols, coo.rows[keep], coo.cols[keep],
                  coo.values[keep])
    )
